package core

import (
	"math"
	"testing"

	"haspmv/internal/amp"
	"haspmv/internal/costmodel"
	"haspmv/internal/exec"
	"haspmv/internal/gen"
)

func TestTuneProportionBeatsSweepNeighbours(t *testing.T) {
	m := amp.IntelI912900KF()
	p := costmodel.DefaultParams()
	a := gen.Representative("shipsec1", 32)
	best, bestSec, err := TuneProportion(m, p, a, Options{}, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if best <= 0.05 || best >= 0.95 {
		t.Fatalf("tuned proportion %v at search boundary", best)
	}
	if bestSec <= 0 {
		t.Fatal("no time returned")
	}
	// The tuned value must be at least as good as a coarse sweep.
	for prop := 0.1; prop < 0.95; prop += 0.1 {
		prep, err := New(Options{PProportion: prop}).Prepare(m, a)
		if err != nil {
			t.Fatal(err)
		}
		sec := exec.Simulate(m, p, a, prep).Seconds
		if sec < bestSec*0.98 {
			t.Fatalf("sweep found %.2f at %.4g, tuner stuck at %.2f/%.4g", prop, sec, best, bestSec)
		}
	}
	// On Intel the optimum must favor the P-group.
	if best < 0.55 {
		t.Fatalf("Intel tuned proportion %v, want > 0.55", best)
	}
}

func TestTuneProportionAMDNearHalf(t *testing.T) {
	m := amp.AMDRyzen97950X()
	p := costmodel.DefaultParams()
	a := gen.Representative("Dubcova2", 32)
	best, _, err := TuneProportion(m, p, a, Options{}, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(best-0.5) > 0.06 {
		t.Fatalf("homogeneous AMD tuned proportion %v, want ~0.5", best)
	}
}

// TestTuneProportionMatchesExhaustive pins the Repartition-probe rewrite:
// the golden-section tuner, now running every probe as a boundary move on
// one prepared instance, must land within tolerance of a fine exhaustive
// sweep over full Prepare calls (the old per-probe pipeline).
func TestTuneProportionMatchesExhaustive(t *testing.T) {
	m := amp.IntelI912900KF()
	p := costmodel.DefaultParams()
	a := gen.Representative("shipsec1", 32)
	const tol = 0.01
	best, bestSec, err := TuneProportion(m, p, a, Options{}, tol)
	if err != nil {
		t.Fatal(err)
	}
	exBest, exSec := 0.0, math.Inf(1)
	for prop := 0.05; prop < 0.951; prop += tol {
		prep, err := New(Options{PProportion: prop}).Prepare(m, a)
		if err != nil {
			t.Fatal(err)
		}
		if sec := exec.Simulate(m, p, a, prep).Seconds; sec < exSec {
			exBest, exSec = prop, sec
		}
	}
	if math.Abs(best-exBest) > 2*tol {
		t.Fatalf("tuned %v vs exhaustive %v (beyond 2*tol)", best, exBest)
	}
	if bestSec > exSec*1.02 {
		t.Fatalf("tuned time %.4g worse than exhaustive %.4g", bestSec, exSec)
	}
}

func TestTuneProportionDefaultTolAndErrors(t *testing.T) {
	m := amp.IntelI913900KF()
	p := costmodel.DefaultParams()
	a := gen.Representative("dawson5", 64)
	if _, _, err := TuneProportion(m, p, a, Options{}, -1); err != nil {
		t.Fatal(err)
	}
	bad := a.Clone()
	bad.ColIdx[0] = -1
	if _, _, err := TuneProportion(m, p, bad, Options{}, 0.05); err == nil {
		t.Fatal("invalid matrix accepted")
	}
}
