package core

import (
	"fmt"
	"time"

	"haspmv/internal/telemetry"
)

var (
	cRepartitions   = telemetry.NewCounter("core_repartitions")
	repartitionHist = telemetry.NewHistogram("core_repartition")
)

// Plan is a partition target for Repartition: the level-1 P-group cost
// share plus optional per-core weights refining the level-2 split.
type Plan struct {
	// PProportion is the P-group's share of the total cost, in (0, 1).
	// It is ignored when the instance has a single effective group
	// (OneLevel, POnly or EOnly configurations).
	PProportion float64
	// Weights skew the within-group level-2 split: core slot i (region
	// order) receives a cost share proportional to Weights[i] within its
	// group's budget. nil means equal shares — Algorithm 4's default.
	Weights []float64
}

// grouped reports whether the instance splits cost between two core
// groups at level 1 (false for OneLevel and single-group configs).
func (p *Prepared) grouped() bool {
	n := len(p.cores)
	return !p.opts.OneLevel && p.pCount > 0 && p.pCount < n
}

// Plan returns the currently installed partition target: the effective
// level-1 proportion and, after a weighted Repartition, the level-2
// weights (nil while the level-2 split is the equal-share default).
func (p *Prepared) Plan() Plan {
	if pl := p.plan.Load(); pl != nil {
		return *pl
	}
	return Plan{PProportion: p.opts.PProportion}
}

// Repartition moves the region boundaries to match plan without
// re-running any analysis: the HACSR reorder, the cost prefix sums and
// the per-row structure are reused, so the whole call is O(cores·log nnz)
// binary searches plus at most one in-row walk per boundary, and the only
// allocation is the fresh regions slice (installed atomically — an
// in-flight Compute keeps its own consistent snapshot).
//
// It is the cheap probe primitive behind TuneProportion and the rebalance
// step of the Adapter; Prepare remains the only place format conversion
// happens.
func (p *Prepared) Repartition(plan Plan) error {
	tel := telemetry.Active()
	var t0 time.Time
	if tel != nil {
		t0 = time.Now()
	}
	n := len(p.cores)
	if n == 0 {
		return nil
	}
	if plan.Weights != nil && len(plan.Weights) != n {
		return fmt.Errorf("core: repartition got %d weights for %d cores", len(plan.Weights), n)
	}
	p.repMu.Lock()
	defer p.repMu.Unlock()
	if p.repBounds == nil {
		p.repBounds = make([]float64, n+1)
		p.repCuts = make([]int, n+1)
	}
	bounds, cuts := p.repBounds, p.repCuts
	if err := p.planBounds(bounds, plan); err != nil {
		return err
	}
	h := p.h
	cuts[0] = 0
	cuts[n] = h.NNZ()
	for i := 1; i < n; i++ {
		cuts[i] = costToPosition(p.mat, p.streams.col32, h, p.cs, bounds[i], p.opts.Metric)
		if cuts[i] < cuts[i-1] {
			cuts[i] = cuts[i-1]
		}
	}
	regions := make([]Region, n)
	for i, c := range p.cores {
		regions[i] = Region{Core: c, Lo: cuts[i], Hi: cuts[i+1], StartRow: rowOfPosition(h, cuts[i])}
	}
	if err := checkRegions(h, regions); err != nil {
		return err
	}
	// Streams and segment descriptors are never rebuilt on a boundary
	// move: each moved region just re-picks the narrowest format all its
	// rows still support and its execution mode (which rows are cut, and
	// whether their groups patch in parallel).
	p.assignFormats(regions)
	p.assignModes(regions)
	planCopy := plan
	if plan.Weights != nil {
		planCopy.Weights = append([]float64(nil), plan.Weights...)
	}
	p.regions.Store(&regions)
	p.plan.Store(&planCopy)
	p.rebalances.Add(1)
	cRepartitions.Add(1)
	if tel != nil {
		d := time.Since(t0)
		tel.RecordPhase(telemetry.PhaseRepartition, d)
		repartitionHist.Observe(d)
	}
	return nil
}

// planBounds fills bounds (len cores+1) with the cost-space boundary of
// every core slot under plan: level 1 splits the total at PProportion
// between the groups, level 2 splits each group's budget proportionally
// to the weights (equal shares when nil).
func (p *Prepared) planBounds(bounds []float64, plan Plan) error {
	n := len(p.cores)
	total := float64(p.cs[len(p.cs)-1])
	grouped := p.grouped()
	if grouped && (plan.PProportion <= 0 || plan.PProportion >= 1) {
		return fmt.Errorf("core: repartition proportion %v outside (0,1)", plan.PProportion)
	}
	w := func(i int) float64 {
		if plan.Weights == nil {
			return 1
		}
		return plan.Weights[i]
	}
	var sumP, sumE float64
	for i := 0; i < n; i++ {
		wi := w(i)
		if wi < 0 {
			return fmt.Errorf("core: repartition weight %d is negative (%v)", i, wi)
		}
		if grouped && i < p.pCount {
			sumP += wi
		} else {
			sumE += wi
		}
	}
	if grouped && sumP <= 0 {
		return fmt.Errorf("core: repartition P-group weights sum to %v", sumP)
	}
	if sumE <= 0 {
		return fmt.Errorf("core: repartition weights sum to %v", sumE)
	}
	costP := 0.0
	if grouped {
		costP = total * plan.PProportion
	}
	acc := 0.0
	bounds[0] = 0
	for i := 0; i < n; i++ {
		var share float64
		if grouped {
			if i < p.pCount {
				share = costP * w(i) / sumP
			} else {
				share = (total - costP) * w(i) / sumE
			}
		} else {
			share = total * w(i) / sumE
		}
		acc += share
		bounds[i+1] = acc
	}
	bounds[n] = total
	return nil
}
