package core

import (
	"fmt"
	"math"

	"haspmv/internal/costmodel"
	"haspmv/internal/exec"
	"haspmv/internal/sparse"
	"haspmv/internal/telemetry"
)

// Compressed-index execution streams. SpMV is stream bound and []int
// column indices are 8 of the 16 bytes moved per nonzero, so Prepare
// derives narrower physical index streams and each region picks the
// narrowest one its rows permit: u32 absolute whenever the matrix has
// fewer than 2^32 columns, u16 deltas from a per-row base column for
// regions whose rows all span at most 65535 columns after the HACSR
// reorder (short-row reordering clusters exactly the rows where this
// holds). The []int stream is kept as the fallback and as the reference
// oracle the fuzz bit-equality stage compares against; results are
// bit-identical across formats because the compressed kernels reproduce
// the []int accumulator chains over the same operand values.

// Stream-build telemetry (no-ops while telemetry is disabled).
var (
	gStreamBytes = telemetry.NewGauge("core_index_stream_bytes")
	gNNZFormat   = [3]*telemetry.Gauge{
		telemetry.NewGauge("core_partition_nnz_int"),
		telemetry.NewGauge("core_partition_nnz_u32"),
		telemetry.NewGauge("core_partition_nnz_u16"),
	}
	cNNZFormat = [3]*telemetry.Counter{
		telemetry.NewCounter("core_nnz_int"),
		telemetry.NewCounter("core_nnz_u32"),
		telemetry.NewCounter("core_nnz_u16"),
	}
)

// IndexFormat is the physical column-index encoding one region executes
// with. The zero value is the []int reference stream, so a Region built
// before stream assignment (or by tests) dispatches to the original
// kernels.
type IndexFormat uint8

const (
	// IndexInt walks the matrix's own ColIdx []int (8 bytes per index).
	IndexInt IndexFormat = iota
	// Index32 walks the u32 absolute stream (4 bytes per index).
	Index32
	// Index16 walks the u16 delta stream with a per-row base column
	// (2 bytes per index).
	Index16
)

func (f IndexFormat) String() string {
	switch f {
	case IndexInt:
		return "int"
	case Index32:
		return "u32"
	case Index16:
		return "u16"
	default:
		return fmt.Sprintf("IndexFormat(%d)", int(f))
	}
}

// BytesPerIndex returns the stream width of the format.
func (f IndexFormat) BytesPerIndex() int {
	switch f {
	case Index32:
		return 4
	case Index16:
		return 2
	default:
		return 8
	}
}

// IndexMode selects which streams Prepare builds. The zero value
// compresses by default: the public API is unchanged and every caller
// gets the narrower streams unless it opts out.
type IndexMode int

const (
	// IndexAuto builds the u32 stream plus u16 deltas for every eligible
	// row; each region then executes with the narrowest format all its
	// rows support.
	IndexAuto IndexMode = iota
	// IndexReference skips compression entirely: every region walks the
	// original []int ColIdx (the oracle the fuzz stage compares against).
	IndexReference
	// IndexU32 builds only the u32 stream (no per-row delta analysis);
	// used by benchmarks to isolate the u32 win from the u16 one.
	IndexU32
)

func (m IndexMode) String() string {
	switch m {
	case IndexAuto:
		return "auto"
	case IndexReference:
		return "int"
	case IndexU32:
		return "u32"
	default:
		return fmt.Sprintf("IndexMode(%d)", int(m))
	}
}

// maxSpan16 is the widest row column-span (maxCol-minCol) a u16 delta
// stream can encode.
const maxSpan16 = math.MaxUint16

// indexStreams holds the compressed column-index streams, all indexed by
// *original* nnz position (parallel to CSR.ColIdx) so the fragment walk
// uses the same offsets for every format.
type indexStreams struct {
	// col32 is the u32 absolute stream; nil when compression is off
	// (IndexReference) or impossible (>= 2^32 columns).
	col32 []uint32
	// col16 is the u16 delta stream. Entries are valid only inside
	// u16-eligible rows (others are zero); nil when no row is eligible or
	// the mode skips delta analysis.
	col16 []uint16
	// rowBase[i] is the base column of reordered row i's delta encoding
	// (the row's minimum column); only present alongside col16.
	rowBase []int
	// elig[i] counts u16-eligible reordered rows before row i (len
	// Rows+1), so a region's rows are all eligible iff the prefix delta
	// equals its row count. Empty rows are trivially eligible.
	elig []int
	// nnz16 is the nonzero count inside eligible rows; maxSpan the
	// largest row column-span seen (both only computed under IndexAuto).
	nnz16   int
	maxSpan int
}

// effIdxBytes is the footprint-weighted index-stream width the built
// streams will move per nonzero, used by the auto level-1 proportion.
// The []int reference is priced at the paper's 4-byte CSR index (the
// same width costmodel.DefaultParams charges it), not Go's physical 8:
// the proportion calibration and every figure reproduction were tuned
// against that model, and reference mode exists to reproduce them.
func (st *indexStreams) effIdxBytes(nnz int) float64 {
	if st.col32 == nil || nnz == 0 || st.nnz16 == 0 {
		return 4
	}
	return float64(4*(nnz-st.nnz16)+2*st.nnz16) / float64(nnz)
}

// buildStreams derives the compressed streams for a under mode. The u32
// copy is one chunked parallel sweep over the nonzeros; the delta
// analysis is one chunked sweep over the original rows (min/max column,
// eligibility, delta fill) followed by a permutation gather of the
// per-row metadata into reordered order — the same two-pass discipline
// as the rest of the Prepare pipeline.
func buildStreams(a *sparse.CSR, h *HACSR, mode IndexMode) indexStreams {
	var st indexStreams
	if mode == IndexReference || uint64(a.Cols) > math.MaxUint32 {
		return st
	}
	nnz := a.NNZ()
	st.col32 = make([]uint32, nnz)
	if mode == IndexU32 || a.Rows == 0 {
		exec.ParallelRanges(nnz, prepWidth(), prepGrain, func(_, lo, hi int) {
			for k := lo; k < hi; k++ {
				st.col32[k] = uint32(a.ColIdx[k])
			}
		})
		return st
	}

	// Per-original-row delta analysis, fused with the u32 copy so the
	// nonzeros stream through once. Each row's span depends only on its
	// own entries, so the sweep chunks freely; per-chunk nnz16 and
	// max-span reductions are combined serially afterwards. minCol doubles
	// as the eligibility flag (-1 = row needs the wide stream).
	m := a.Rows
	minCol := make([]int, m)
	c := exec.RangeChunks(m, prepWidth(), prepGrain)
	nnz16s := make([]int, c)
	spans := make([]int, c)
	exec.ParallelRanges(m, prepWidth(), prepGrain, func(ch, lo, hi int) {
		n16, mspan := 0, 0
		for i := lo; i < hi; i++ {
			rlo, rhi := a.RowPtr[i], a.RowPtr[i+1]
			if rlo == rhi {
				continue
			}
			mn, mx := a.ColIdx[rlo], a.ColIdx[rlo]
			for k := rlo; k < rhi; k++ {
				cix := a.ColIdx[k]
				st.col32[k] = uint32(cix)
				if cix < mn {
					mn = cix
				} else if cix > mx {
					mx = cix
				}
			}
			minCol[i] = mn
			if span := mx - mn; span > mspan {
				mspan = span
			}
			if mx-mn <= maxSpan16 {
				n16 += rhi - rlo
			} else {
				minCol[i] = -1
			}
		}
		nnz16s[ch], spans[ch] = n16, mspan
	})
	for ch := 0; ch < c; ch++ {
		st.nnz16 += nnz16s[ch]
		if spans[ch] > st.maxSpan {
			st.maxSpan = spans[ch]
		}
	}
	if st.nnz16 == 0 {
		return st
	}

	// Only now that some row qualifies is the delta stream worth its
	// allocation: fill it for eligible rows (their entries are cache-warm
	// from the fused sweep on all but the largest matrices).
	st.col16 = make([]uint16, nnz)
	exec.ParallelRanges(m, prepWidth(), prepGrain, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			mn := minCol[i]
			if mn < 0 {
				continue
			}
			for k, rhi := a.RowPtr[i], a.RowPtr[i+1]; k < rhi; k++ {
				st.col16[k] = uint16(a.ColIdx[k] - mn)
			}
		}
	})

	// Gather the per-row metadata through the reorder permutation and
	// prefix-sum the eligibility flags.
	st.rowBase = make([]int, m)
	st.elig = make([]int, m+1)
	exec.ParallelRanges(m, prepWidth(), prepGrain, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			if mn := minCol[h.Perm[i]]; mn >= 0 {
				st.rowBase[i] = mn
				st.elig[i+1] = 1
			}
		}
	})
	prefixSum(st.elig[1:])
	return st
}

// regionFormat picks the narrowest stream every row of the region can
// execute with. A region may start or end mid-row; delta validity is
// per-row, so a partial fragment of an eligible row still decodes
// correctly and only the set of *touched* rows matters.
func (p *Prepared) regionFormat(r Region) IndexFormat {
	st := &p.streams
	if st.col32 == nil {
		return IndexInt
	}
	if r.Lo >= r.Hi {
		return Index32
	}
	if st.col16 != nil {
		last := rowOfPosition(p.h, r.Hi-1)
		if st.elig[last+1]-st.elig[r.StartRow] == last+1-r.StartRow {
			return Index16
		}
	}
	return Index32
}

// assignFormats stamps every region with its execution format and
// refreshes the partition-level stream gauges. It runs at Prepare and
// after every Repartition, before the regions slice is published:
// boundary moves never rebuild streams, they only re-pick formats, and a
// region that comes to straddle a u16-ineligible row falls back to the
// widest format present among its rows (u32, or []int when compression
// is off).
func (p *Prepared) assignFormats(regions []Region) {
	var bytes, modelIdx int64
	var nnzBy [3]int64
	for i := range regions {
		f := p.regionFormat(regions[i])
		regions[i].Format = f
		n := int64(regions[i].Hi - regions[i].Lo)
		nnzBy[f] += n
		bytes += n * int64(f.BytesPerIndex())
		modelIdx += n * int64(modelIdxBytes(f))
	}
	gStreamBytes.Set(bytes)
	for f := range nnzBy {
		gNNZFormat[f].Set(nnzBy[f])
	}
	// Cache the modeled structure traffic of one sweep (values + indexes
	// at the cost model's widths + row pointers) for the per-multiply
	// effective-bandwidth gauge; runs before the regions are published, so
	// multiplies always see a price matching their formats.
	pm := costmodel.DefaultParams()
	p.structBytes.Store(int64(p.mat.NNZ())*int64(pm.ValBytes) + modelIdx + int64(p.mat.Rows)*int64(pm.PtrBytes))
}

// modelIdxBytes is the cost model's width for a region's index stream:
// the []int reference keeps the paper's 4-byte baseline (as Assignments
// reports it), matching the Assignment.IdxBytes convention.
func modelIdxBytes(f IndexFormat) int {
	if f == Index16 {
		return 2
	}
	return 4
}

// IndexStats summarizes the compressed execution representation of the
// live partition.
type IndexStats struct {
	// NNZByFormat counts assigned nonzeros per execution format, indexed
	// by IndexFormat (int, u32, u16).
	NNZByFormat [3]int
	// StreamIndexBytes is the total index bytes one multiply streams
	// under the current region formats.
	StreamIndexBytes int
	// Eligible16NNZ counts nonzeros in u16-eligible rows (an upper bound
	// on the u16 assignment; only computed under IndexAuto).
	Eligible16NNZ int
	// MaxRowSpan is the largest row column-span observed (only computed
	// under IndexAuto).
	MaxRowSpan int
}

// IndexStats reports the per-format nnz split, index-stream bytes, and
// row-span profile of the live partition.
func (p *Prepared) IndexStats() IndexStats {
	s := IndexStats{
		Eligible16NNZ: p.streams.nnz16,
		MaxRowSpan:    p.streams.maxSpan,
	}
	for _, r := range *p.regions.Load() {
		n := r.Hi - r.Lo
		s.NNZByFormat[r.Format] += n
		s.StreamIndexBytes += n * r.Format.BytesPerIndex()
	}
	return s
}
