package core

import (
	"fmt"
	"math"

	"haspmv/internal/costmodel"
	"haspmv/internal/exec"
	"haspmv/internal/kernel"
	"haspmv/internal/sparse"
	"haspmv/internal/telemetry"
)

// Pluggable per-region execution formats. SpMV is stream bound and []int
// column indices are 8 of the 16 bytes moved per nonzero, so Prepare
// derives narrower physical index streams and each region picks the
// cheapest encoding (fewest stream bytes) its rows permit:
//
//   - u32 absolute indices whenever the matrix has fewer than 2^32
//     columns (4 bytes per nonzero),
//   - u16 deltas from a per-row base column for regions whose rows all
//     span at most 65535 columns after the HACSR reorder (2 bytes per
//     nonzero; short-row reordering clusters exactly the rows where this
//     holds),
//   - a DIA-style diagonal descriptor stream for regions dominated by
//     runs of nonzeros at consecutive columns (banded and stencil
//     matrices): an 8-byte {end, col-k offset} descriptor per run and
//     *no per-nonzero index at all*. Rows whose run structure is too
//     fragmented to pay for descriptors stay on the u32 stream inside
//     the same region — the per-row fallback mirrors the SegSum
//     fragment discipline, so one defective row never disqualifies a
//     whole band.
//
// The []int stream is kept as the fallback and as the reference oracle
// the fuzz bit-equality stage compares against; results are
// bit-identical across formats because the compressed kernels reproduce
// the []int accumulator chains over the same operand values.

// Stream-build telemetry (no-ops while telemetry is disabled).
var (
	gStreamBytes = telemetry.NewGauge("core_index_stream_bytes")
	gValueBytes  = telemetry.NewGauge("core_value_stream_bytes")
	gDiaRuns     = telemetry.NewGauge("core_partition_dia_runs")
	gNNZFormat   = [4]*telemetry.Gauge{
		telemetry.NewGauge("core_partition_nnz_int"),
		telemetry.NewGauge("core_partition_nnz_u32"),
		telemetry.NewGauge("core_partition_nnz_u16"),
		telemetry.NewGauge("core_partition_nnz_dia"),
	}
	cNNZFormat = [4]*telemetry.Counter{
		telemetry.NewCounter("core_nnz_int"),
		telemetry.NewCounter("core_nnz_u32"),
		telemetry.NewCounter("core_nnz_u16"),
		telemetry.NewCounter("core_nnz_dia"),
	}
	cNNZValue = [3]*telemetry.Counter{
		telemetry.NewCounter("core_nnz_val_f64"),
		telemetry.NewCounter("core_nnz_val_palette"),
		telemetry.NewCounter("core_nnz_val_f32"),
	}
)

// IndexFormat is the physical column-index encoding one region executes
// with. The zero value is the []int reference stream, so a Region built
// before stream assignment (or by tests) dispatches to the original
// kernels.
type IndexFormat uint8

const (
	// IndexInt walks the matrix's own ColIdx []int (8 bytes per index).
	IndexInt IndexFormat = iota
	// Index32 walks the u32 absolute stream (4 bytes per index).
	Index32
	// Index16 walks the u16 delta stream with a per-row base column
	// (2 bytes per index).
	Index16
	// IndexDia walks run descriptors (8 bytes per *run*, no per-nonzero
	// index); rows without enough run structure fall back to the u32
	// stream inside the region.
	IndexDia
)

func (f IndexFormat) String() string {
	switch f {
	case IndexInt:
		return "int"
	case Index32:
		return "u32"
	case Index16:
		return "u16"
	case IndexDia:
		return "dia"
	default:
		return fmt.Sprintf("IndexFormat(%d)", int(f))
	}
}

// BytesPerIndex returns the per-nonzero stream width of the format.
// IndexDia has no per-nonzero index — its descriptor traffic is per run
// (see IndexStats.StreamIndexBytes for the real byte accounting) — so
// it reports 0 here.
func (f IndexFormat) BytesPerIndex() int {
	switch f {
	case Index32:
		return 4
	case Index16:
		return 2
	case IndexDia:
		return 0
	default:
		return 8
	}
}

// IndexMode selects which streams Prepare builds. The zero value
// compresses by default: the public API is unchanged and every caller
// gets the narrower streams unless it opts out.
type IndexMode int

const (
	// IndexAuto builds the u32 stream, u16 deltas for every eligible
	// row, and diagonal descriptors for every run-structured row; each
	// region then executes with the cheapest format its rows support.
	IndexAuto IndexMode = iota
	// IndexReference skips compression entirely: every region walks the
	// original []int ColIdx (the oracle the fuzz stage compares against).
	IndexReference
	// IndexU32 builds only the u32 stream (no per-row delta or run
	// analysis); used by benchmarks to isolate the u32 win from the
	// narrower formats.
	IndexU32
	// IndexForceDia builds the same streams as IndexAuto but assigns
	// IndexDia to every region whenever any row qualified (ineligible
	// rows still take the per-row u32 fallback); used by the fuzz
	// targets and benchmarks to pin the diagonal path.
	IndexForceDia
)

func (m IndexMode) String() string {
	switch m {
	case IndexAuto:
		return "auto"
	case IndexReference:
		return "int"
	case IndexU32:
		return "u32"
	case IndexForceDia:
		return "dia"
	default:
		return fmt.Sprintf("IndexMode(%d)", int(m))
	}
}

// maxSpan16 is the widest row column-span (maxCol-minCol) a u16 delta
// stream can encode.
const maxSpan16 = math.MaxUint16

// diaMinSingleRunLen and diaMinRunLen gate rows into the diagonal
// format on time, not just bytes. Bytes alone would put both bounds at
// 4 (an 8-byte descriptor over >= 4 nonzeros is <= 2 bytes per nonzero,
// no worse than u16), but the decoder pays real time the byte count
// does not see, and how much depends on the row's run structure:
//
//   - A single-run row executes through the branch-free contiguous
//     kernels of diag_contig.go; its only overhead is the per-row
//     skip-and-reslice preamble, which a 4-nonzero row cannot amortize.
//     Measured on short-banded matrices (single runs of ~5), the byte
//     bound picked dia and ran ~25% slower than the u16 stream; runs of
//     >= diaMinSingleRunLen amortize the preamble.
//
//   - A multi-run row walks the general decoder, which takes a boundary
//     check per unroll group and a per-element catch-up loop in every
//     group straddling a run end. At mean run ~8 nearly every 8-wide
//     group straddles (measured ~30% slower than u16 despite 1.57 vs 2
//     bytes per nonzero); runs of >= diaMinRunLen keep most groups on
//     the branch-free path.
const diaMinSingleRunLen = 8

// diaMinRunLen is the mean-run-length bound for multi-run rows; see
// diaMinSingleRunLen.
const diaMinRunLen = 16

// indexStreams holds the compressed column-index streams, all indexed by
// *original* nnz position (parallel to CSR.ColIdx) so the fragment walk
// uses the same offsets for every format.
type indexStreams struct {
	// col32 is the u32 absolute stream; nil when compression is off
	// (IndexReference) or impossible (>= 2^32 columns).
	col32 []uint32
	// col16 is the u16 delta stream. Entries are valid only inside
	// u16-eligible rows (others are zero); nil when no row is eligible or
	// the mode skips delta analysis.
	col16 []uint16
	// rowBase[i] is the base column of reordered row i's delta encoding
	// (the row's minimum column); only present alongside col16.
	rowBase []int
	// elig[i] counts u16-eligible reordered rows before row i (len
	// Rows+1), so a region's rows are all eligible iff the prefix delta
	// equals its row count. Empty rows are trivially eligible.
	elig []int
	// runs holds the diagonal descriptors of every dia-eligible row, in
	// reordered row order; one row's runs are contiguous and EndK is an
	// *original* nnz position. Nil when no row qualifies.
	runs []kernel.DiaRun
	// rowRun[i] counts run descriptors of dia-eligible reordered rows
	// before row i (len Rows+1): row i's descriptors are
	// runs[rowRun[i]:rowRun[i+1]], and the row is dia-eligible iff that
	// slice is nonempty.
	rowRun []int32
	// diaInel[i] counts nonzeros of dia-*ineligible* reordered rows
	// before row i (len Rows+1) — the nonzeros a dia region executes
	// through the per-row u32 fallback.
	diaInel []int
	// runNNZ is the nonzero count inside dia-eligible rows.
	runNNZ int
	// nnz16 is the nonzero count inside u16-eligible rows; maxSpan the
	// largest row column-span seen (both only computed under IndexAuto).
	nnz16   int
	maxSpan int
	// bestIdx is the summed per-row minimum of the index-side stream
	// bytes (u32, u16 where eligible, descriptors where eligible) — the
	// footprint the assigned formats approach from above.
	bestIdx int64
}

// effIdxBytes is the footprint-weighted index-stream width the built
// streams will move per nonzero, used by the auto level-1 proportion.
// The []int reference is priced at the paper's 4-byte CSR index (the
// same width costmodel.DefaultParams charges it), not Go's physical 8:
// the proportion calibration and every figure reproduction were tuned
// against that model, and reference mode exists to reproduce them.
func (st *indexStreams) effIdxBytes(nnz int) float64 {
	if st.col32 == nil || nnz == 0 || st.bestIdx == 0 {
		return 4
	}
	return float64(st.bestIdx) / float64(nnz)
}

// buildStreams derives the compressed streams for a under mode. The u32
// copy is one chunked parallel sweep over the nonzeros, fused with the
// per-row delta analysis (min/max column) and run counting; a second
// sweep fills the delta stream, and a permutation gather moves the
// per-row metadata into reordered order and materializes the run
// descriptors — the same two-pass discipline as the rest of the Prepare
// pipeline.
func buildStreams(a *sparse.CSR, h *HACSR, mode IndexMode) indexStreams {
	var st indexStreams
	if mode == IndexReference || uint64(a.Cols) > math.MaxUint32 {
		return st
	}
	nnz := a.NNZ()
	st.col32 = make([]uint32, nnz)
	if mode == IndexU32 || a.Rows == 0 {
		exec.ParallelRanges(nnz, prepWidth(), prepGrain, func(_, lo, hi int) {
			for k := lo; k < hi; k++ {
				st.col32[k] = uint32(a.ColIdx[k])
			}
		})
		return st
	}

	// Diagonal descriptors pack positions and offsets into int32s;
	// anything larger stays on the absolute/delta streams.
	diaOK := int64(a.Cols) <= math.MaxInt32 && int64(nnz) <= math.MaxInt32
	var runCnt []int32
	if diaOK {
		runCnt = make([]int32, a.Rows)
	}

	// Per-original-row analysis, fused with the u32 copy so the nonzeros
	// stream through once: min/max column for the delta eligibility, and
	// the count of consecutive-column runs for the diagonal eligibility.
	// Each row's metadata depends only on its own entries, so the sweep
	// chunks freely; per-chunk nnz16 and max-span reductions are combined
	// serially afterwards. minCol doubles as the delta-eligibility flag
	// (-1 = row needs the wide stream).
	m := a.Rows
	minCol := make([]int, m)
	c := exec.RangeChunks(m, prepWidth(), prepGrain)
	nnz16s := make([]int, c)
	spans := make([]int, c)
	exec.ParallelRanges(m, prepWidth(), prepGrain, func(ch, lo, hi int) {
		n16, mspan := 0, 0
		for i := lo; i < hi; i++ {
			rlo, rhi := a.RowPtr[i], a.RowPtr[i+1]
			if rlo == rhi {
				continue
			}
			mn := a.ColIdx[rlo]
			mx := mn
			prev := mn
			runs := int32(1)
			st.col32[rlo] = uint32(mn)
			for k := rlo + 1; k < rhi; k++ {
				cix := a.ColIdx[k]
				st.col32[k] = uint32(cix)
				if cix < mn {
					mn = cix
				} else if cix > mx {
					mx = cix
				}
				if cix != prev+1 {
					runs++
				}
				prev = cix
			}
			minCol[i] = mn
			if span := mx - mn; span > mspan {
				mspan = span
			}
			if mx-mn <= maxSpan16 {
				n16 += rhi - rlo
			} else {
				minCol[i] = -1
			}
			if runCnt != nil {
				runCnt[i] = runs
			}
		}
		nnz16s[ch], spans[ch] = n16, mspan
	})
	for ch := 0; ch < c; ch++ {
		st.nnz16 += nnz16s[ch]
		if spans[ch] > st.maxSpan {
			st.maxSpan = spans[ch]
		}
	}
	if st.nnz16 == 0 && runCnt == nil {
		return st
	}

	// Only now that some row qualifies is the delta stream worth its
	// allocation: fill it for eligible rows (their entries are cache-warm
	// from the fused sweep on all but the largest matrices).
	if st.nnz16 > 0 {
		st.col16 = make([]uint16, nnz)
		exec.ParallelRanges(m, prepWidth(), prepGrain, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				mn := minCol[i]
				if mn < 0 {
					continue
				}
				for k, rhi := a.RowPtr[i], a.RowPtr[i+1]; k < rhi; k++ {
					st.col16[k] = uint16(a.ColIdx[k] - mn)
				}
			}
		})
		st.rowBase = make([]int, m)
		st.elig = make([]int, m+1)
	}

	// Gather the per-row metadata through the reorder permutation:
	// delta bases and eligibility flags, diagonal eligibility (a
	// single-run row qualifies at diaMinSingleRunLen, a multi-run row
	// at the decode-amortizing bound rowLen >= diaMinRunLen*runCount),
	// and the per-row best-format byte count that prices the auto
	// proportion.
	if runCnt != nil {
		st.rowRun = make([]int32, m+1)
		st.diaInel = make([]int, m+1)
	}
	bests := make([]int64, c)
	exec.ParallelRanges(m, prepWidth(), prepGrain, func(ch, lo, hi int) {
		var best int64
		for i := lo; i < hi; i++ {
			o := h.Perm[i]
			rl := a.RowPtr[o+1] - a.RowPtr[o]
			b := int64(4 * rl)
			if mn := minCol[o]; mn >= 0 {
				if st.elig != nil {
					st.rowBase[i] = mn
					st.elig[i+1] = 1
				}
				if hb := int64(2 * rl); hb < b {
					b = hb
				}
			}
			if runCnt != nil {
				if rc := runCnt[o]; (rc == 1 && rl >= diaMinSingleRunLen) ||
					(rc > 1 && rl >= diaMinRunLen*int(rc)) {
					st.rowRun[i+1] = rc
					if db := 8 * int64(rc); db < b {
						b = db
					}
				} else {
					st.diaInel[i+1] = rl
				}
			}
			best += b
		}
		bests[ch] = best
	})
	for ch := 0; ch < c; ch++ {
		st.bestIdx += bests[ch]
	}
	if st.elig != nil {
		prefixSum(st.elig[1:])
	}
	if runCnt == nil {
		return st
	}
	for i := 1; i <= m; i++ {
		st.rowRun[i] += st.rowRun[i-1]
		st.diaInel[i] += st.diaInel[i-1]
	}
	total := int(st.rowRun[m])
	if total == 0 {
		st.rowRun, st.diaInel = nil, nil
		return st
	}
	st.runNNZ = nnz - st.diaInel[m]

	// Materialize the descriptors for eligible rows, in reordered order
	// so one row's runs are contiguous and indexed by the rowRun prefix.
	// EndK stays an original nnz position — the same offsets the
	// fragment walk uses for every other stream.
	st.runs = make([]kernel.DiaRun, total)
	exec.ParallelRanges(m, prepWidth(), prepGrain, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			ri := int(st.rowRun[i])
			if int(st.rowRun[i+1]) == ri {
				continue
			}
			o := h.Perm[i]
			klo, khi := a.RowPtr[o], a.RowPtr[o+1]
			c0, start := a.ColIdx[klo], klo
			for k := klo + 1; k < khi; k++ {
				if a.ColIdx[k] != a.ColIdx[k-1]+1 {
					st.runs[ri] = kernel.DiaRun{EndK: int32(k), ColMinusK: int32(c0 - start)}
					ri++
					c0, start = a.ColIdx[k], k
				}
			}
			st.runs[ri] = kernel.DiaRun{EndK: int32(khi), ColMinusK: int32(c0 - start)}
		}
	})
	return st
}

// regionDiaParts returns the run-descriptor and fallback-nonzero counts
// a diagonal execution of the region walks: descriptors of every
// dia-eligible row it touches, plus the nonzeros of its ineligible rows
// (executed through the per-row u32 fallback). Both are full-row counts
// — a region may start or end mid-row, and the boundary fragments reuse
// the whole row's descriptors — so the byte estimate is an upper bound
// for boundary rows, exact everywhere else.
func (p *Prepared) regionDiaParts(r Region) (runs, inelNNZ int64) {
	st := &p.streams
	if st.runs == nil || r.Lo >= r.Hi {
		return 0, 0
	}
	last := rowOfPosition(p.h, r.Hi-1)
	return int64(st.rowRun[last+1] - st.rowRun[r.StartRow]),
		int64(st.diaInel[last+1] - st.diaInel[r.StartRow])
}

// regionFormat picks the cheapest stream (fewest index-side bytes) the
// region's rows can execute with. A region may start or end mid-row;
// delta and run validity are per-row, so a partial fragment of an
// eligible row still decodes correctly and only the set of *touched*
// rows matters. Ties keep the earlier (simpler) format, so diagonal
// execution engages only when descriptors are strictly cheaper.
func (p *Prepared) regionFormat(r Region) IndexFormat {
	st := &p.streams
	if st.col32 == nil {
		return IndexInt
	}
	if r.Lo >= r.Hi {
		return Index32
	}
	if p.opts.Index == IndexForceDia && st.runs != nil {
		return IndexDia
	}
	last := rowOfPosition(p.h, r.Hi-1)
	n := int64(r.Hi - r.Lo)
	best, bestBytes := Index32, 4*n
	if st.col16 != nil && st.elig[last+1]-st.elig[r.StartRow] == last+1-r.StartRow {
		if b := 2 * n; b < bestBytes {
			best, bestBytes = Index16, b
		}
	}
	if st.runs != nil {
		runsIn := int64(st.rowRun[last+1] - st.rowRun[r.StartRow])
		inel := int64(st.diaInel[last+1] - st.diaInel[r.StartRow])
		if runsIn > 0 {
			if b := 8*runsIn + 4*inel; b < bestBytes {
				best = IndexDia
			}
		}
	}
	return best
}

// assignFormats stamps every region with its index format and the
// instance's value format, and refreshes the partition-level stream
// gauges. It runs at Prepare and after every Repartition, before the
// regions slice is published: boundary moves never rebuild streams,
// they only re-pick formats, and a region that comes to straddle a
// u16-ineligible row falls back to the cheapest format its new row set
// supports (dia, u32, or []int when compression is off).
func (p *Prepared) assignFormats(regions []Region) {
	var bytes, modelIdx, diaRuns int64
	var nnzBy [4]int64
	vf := p.values.format
	for i := range regions {
		f := p.regionFormat(regions[i])
		regions[i].Format = f
		regions[i].Val = vf
		n := int64(regions[i].Hi - regions[i].Lo)
		nnzBy[f] += n
		var b int64
		switch f {
		case IndexDia:
			runsIn, inel := p.regionDiaParts(regions[i])
			b = 8*runsIn + 4*inel
			diaRuns += runsIn
			bytes += b
			modelIdx += b
		case IndexInt:
			// The []int reference keeps the paper's 4-byte model width in
			// the traffic estimate (as Assignments reports it) but streams
			// Go's physical 8 bytes.
			bytes += 8 * n
			modelIdx += 4 * n
		default:
			b = n * int64(f.BytesPerIndex())
			bytes += b
			modelIdx += b
		}
	}
	gStreamBytes.Set(bytes)
	gDiaRuns.Set(diaRuns)
	for f := range nnzBy {
		gNNZFormat[f].Set(nnzBy[f])
	}
	// Cache the modeled structure traffic of one sweep (values at the
	// built stream's width plus the palette table, indexes at the
	// assigned widths, row pointers) for the per-multiply
	// effective-bandwidth gauge; runs before the regions are published,
	// so multiplies always see a price matching their formats. SegSum
	// interiors keep streaming f64 values under a palette (the table
	// entry is the stored float64, so both reads are the same number) —
	// the narrower width is the modeled approximation there.
	pm := costmodel.DefaultParams()
	valBytes := int64(p.mat.NNZ()) * int64(pm.ValBytes)
	if vf != ValF64 {
		valBytes = int64(p.mat.NNZ())*int64(vf.BytesPerValue()) + 8*int64(len(p.values.pal))
	}
	gValueBytes.Set(valBytes)
	p.structBytes.Store(valBytes + modelIdx + int64(p.mat.Rows)*int64(pm.PtrBytes))
}

// IndexStats summarizes the compressed execution representation of the
// live partition.
type IndexStats struct {
	// NNZByFormat counts assigned nonzeros per execution format, indexed
	// by IndexFormat (int, u32, u16, dia).
	NNZByFormat [4]int
	// StreamIndexBytes is the total index bytes one multiply streams
	// under the current region formats (for dia regions: run descriptors
	// plus the u32 fallback indices of ineligible rows).
	StreamIndexBytes int
	// Eligible16NNZ counts nonzeros in u16-eligible rows (an upper bound
	// on the u16 assignment; only computed under IndexAuto).
	Eligible16NNZ int
	// MaxRowSpan is the largest row column-span observed (only computed
	// under IndexAuto).
	MaxRowSpan int
	// DiaRuns is the number of diagonal run descriptors built (all
	// dia-eligible rows, whether or not a dia region covers them).
	DiaRuns int
	// DiaEligibleNNZ counts nonzeros in dia-eligible rows (an upper
	// bound on the descriptor-covered assignment).
	DiaEligibleNNZ int
}

// IndexStats reports the per-format nnz split, index-stream bytes, and
// row-structure profile of the live partition.
func (p *Prepared) IndexStats() IndexStats {
	s := IndexStats{
		Eligible16NNZ:  p.streams.nnz16,
		MaxRowSpan:     p.streams.maxSpan,
		DiaRuns:        len(p.streams.runs),
		DiaEligibleNNZ: p.streams.runNNZ,
	}
	for _, r := range *p.regions.Load() {
		n := r.Hi - r.Lo
		s.NNZByFormat[r.Format] += n
		if r.Format == IndexDia {
			runsIn, inel := p.regionDiaParts(r)
			s.StreamIndexBytes += int(8*runsIn + 4*inel)
		} else {
			s.StreamIndexBytes += n * r.Format.BytesPerIndex()
		}
	}
	return s
}
