package core

import (
	"math"
	"os"
	"testing"
	"time"

	"haspmv/internal/algtest"
	"haspmv/internal/amp"
	"haspmv/internal/exec"
	"haspmv/internal/gen"
	"haspmv/internal/sparse"
)

// shuffledBand is the autotuner's target workload: a banded matrix
// (half-width half, one contiguous run per row) whose rows were
// scattered by a deterministic shuffle. Row structure is untouched —
// every row stays u16/dia-eligible in any order — so the only thing a
// reorder can win back is x-gather locality.
func shuffledBand(rows, half int) *sparse.CSR {
	rowPtr := make([]int, rows+1)
	colIdx := make([]int, 0, rows*(2*half+1))
	val := make([]float64, 0, rows*(2*half+1))
	for i := 0; i < rows; i++ {
		lo := i - half
		if lo < 0 {
			lo = 0
		}
		hi := i + half
		if hi > rows-1 {
			hi = rows - 1
		}
		for j := lo; j <= hi; j++ {
			colIdx = append(colIdx, j)
			val = append(val, 1+float64((i+j)%7)/8)
		}
		rowPtr[i+1] = len(colIdx)
	}
	a := &sparse.CSR{Rows: rows, Cols: rows, RowPtr: rowPtr, ColIdx: colIdx, Val: val}
	return gen.ShuffleRows(a, 42)
}

// stridedStencil is the workload graph orders genuinely win: k entries
// per row, stride cache-lines apart, so every nonzero touches its own
// x line and neighbouring rows share almost their whole line span.
// After a shuffle, length-sort can't help (all rows the same length)
// but a graph order re-clusters the bases — the x-gather saving dwarfs
// the per-row stream-seek charge the reorder pays.
func stridedStencil(rows, k, stride int) *sparse.CSR {
	return gen.ShuffleRows(gen.StridedStencil(rows, k, stride), 42)
}

// ungate drops the autotuner's time-budget gate for the test's duration
// so the graph strategies compete on small inputs.
func ungate(t *testing.T) {
	t.Helper()
	old := reorderAutoMinNNZ
	reorderAutoMinNNZ = 1
	t.Cleanup(func() { reorderAutoMinNNZ = old })
}

// Every reorder mode must produce a valid row permutation, full nonzero
// coverage, a correct product, and (for the forced modes) the strategy
// it names — across the structural battery, including empty rows, hub
// rows and the hypersparse wide shape that exercises the column-id
// compaction of the bipartite graph build.
func TestReorderModesValidAndCorrect(t *testing.T) {
	m := amp.IntelI912900KF()
	forced := map[ReorderMode]ReorderStrategy{
		ReorderIdentity: StrategyIdentity,
		ReorderRCM:      StrategyRCM,
		ReorderCluster:  StrategyCluster,
	}
	for _, name := range []string{"powerlaw", "banded-fem", "alternating-empty", "hub-row", "wide-rect", "tiny-3x3", "empty-0x0"} {
		a := algtest.Matrix(name)
		for _, mode := range []ReorderMode{ReorderLength, ReorderIdentity, ReorderRCM, ReorderCluster, ReorderAuto} {
			prep, err := New(Options{Reorder: mode}).Prepare(m, a)
			if err != nil {
				t.Fatalf("%s/%v: Prepare: %v", name, mode, err)
			}
			hp := prep.(*Prepared)
			perm := hp.Format().Perm
			if len(perm) != a.Rows {
				t.Fatalf("%s/%v: perm length %d, rows %d", name, mode, len(perm), a.Rows)
			}
			seen := make([]bool, a.Rows)
			for _, r := range perm {
				if r < 0 || r >= a.Rows || seen[r] {
					t.Fatalf("%s/%v: perm is not a bijection at row %d", name, mode, r)
				}
				seen[r] = true
			}
			if err := exec.CheckAssignments(a, prep.Assignments()); err != nil {
				t.Fatalf("%s/%v: %v", name, mode, err)
			}
			if want, ok := forced[mode]; ok && hp.ReorderStats().Strategy != want {
				t.Fatalf("%s/%v: forced mode recorded strategy %v", name, mode, hp.ReorderStats().Strategy)
			}
			x := make([]float64, a.Cols)
			for i := range x {
				x[i] = 1 + float64(i%9)/4
			}
			y := make([]float64, a.Rows)
			want := make([]float64, a.Rows)
			prep.Compute(y, x)
			a.MulVec(want, x)
			for i := range y {
				if d := math.Abs(y[i] - want[i]); d > 1e-9*(1+math.Abs(want[i])) {
					t.Fatalf("%s/%v: y[%d] = %v, want %v", name, mode, i, y[i], want[i])
				}
			}
		}
	}
}

// Below the nnz gate the autotuner must not pay for the graph
// traversals: the decision reports Gated, the graph scores stay
// unevaluated, and the pick is an O(rows) order. Dropping the gate
// brings the graph candidates into the race.
func TestReorderAutoGate(t *testing.T) {
	m := amp.IntelI912900KF()
	a := algtest.Matrix("powerlaw")
	if a.NNZ() >= reorderAutoMinNNZ {
		t.Fatalf("battery matrix grew past the gate (%d nnz)", a.NNZ())
	}
	prep, err := New(Options{Reorder: ReorderAuto}).Prepare(m, a)
	if err != nil {
		t.Fatal(err)
	}
	dec := prep.(*Prepared).ReorderStats()
	if !dec.Gated {
		t.Fatal("small matrix not gated")
	}
	if dec.Scores[StrategyRCM].Evaluated || dec.Scores[StrategyCluster].Evaluated {
		t.Fatal("gated Prepare still scored the graph strategies")
	}
	if s := dec.Strategy; s != StrategyLength && s != StrategyIdentity {
		t.Fatalf("gated pick %v, want an O(rows) order", s)
	}

	ungate(t)
	prep, err = New(Options{Reorder: ReorderAuto}).Prepare(m, a)
	if err != nil {
		t.Fatal(err)
	}
	dec = prep.(*Prepared).ReorderStats()
	if dec.Gated {
		t.Fatal("still gated with the gate dropped")
	}
	if !dec.Scores[StrategyRCM].Evaluated || !dec.Scores[StrategyCluster].Evaluated {
		t.Fatal("ungated Prepare skipped the graph strategies")
	}
	if dec.AnalysisNs <= 0 {
		t.Fatal("auto decision recorded no analysis time")
	}
}

// smallLLCMachine is the stock machine with its last-level cache
// shrunk below the test matrices' x vectors, so the gather term is
// charged at full DRAM cost — the regime the graph orders exist for.
func smallLLCMachine() *amp.Machine {
	m := amp.IntelI912900KF()
	m.Name = m.Name + "-small-llc"
	for i := range m.Groups {
		m.Groups[i].L3Bytes = 64 << 10
	}
	return m
}

// On a shuffled strided stencil above the gate, with x spilling the
// machine's LLC, the autotuner must choose a graph order (the whole
// point of the strategy layer), and its score must beat length-sort by
// at least the hysteresis margin it was required to clear.
func TestReorderAutoPicksGraphOnStridedStencil(t *testing.T) {
	a := stridedStencil(1<<15, 4, 16)
	if a.NNZ() < reorderAutoMinNNZ {
		t.Fatalf("strided stencil under the gate: %d nnz", a.NNZ())
	}
	prep, err := New(Options{Reorder: ReorderAuto}).Prepare(smallLLCMachine(), a)
	if err != nil {
		t.Fatal(err)
	}
	dec := prep.(*Prepared).ReorderStats()
	if dec.XResident {
		t.Fatal("x reported LLC-resident on the small-LLC machine")
	}
	if dec.Gated {
		t.Fatal("stencil above the gate reported Gated")
	}
	if dec.Strategy != StrategyRCM && dec.Strategy != StrategyCluster {
		t.Fatalf("autotuner picked %v on a shuffled strided stencil, want a graph order", dec.Strategy)
	}
	pick, length := dec.Scores[dec.Strategy], dec.Scores[StrategyLength]
	if pick.Total*100 >= length.Total*(100-reorderMarginPct) {
		t.Fatalf("pick total %d did not clear the margin against length %d", pick.Total, length.Total)
	}
	// The win is x-gather locality, not index compression: every row is
	// k singleton runs in any order.
	if pick.GatherBytes >= length.GatherBytes {
		t.Fatalf("gather bytes did not improve: %d -> %d", length.GatherBytes, pick.GatherBytes)
	}
	// The graph order must have been charged for scattering the value
	// and index streams — the model's honesty about view-only reorders.
	if pick.SeekBytes <= 0 {
		t.Fatalf("graph pick paid no seek bytes (%+v)", pick)
	}
}

// Same stencil, stock machine: x (256KB) is resident in the 30MB LLC,
// so the modeled gather win is an illusion — a "missed" x line is an
// L3 hit — and the discount must keep the autotuner on an O(rows)
// order rather than paying real stream seeks for cache hits. (Measured
// on a cache-rich host: the graph orders are ~1.0x or slower here.)
func TestReorderLLCDiscountKeepsLengthWhenXResident(t *testing.T) {
	a := stridedStencil(1<<15, 4, 16)
	prep, err := New(Options{Reorder: ReorderAuto}).Prepare(amp.IntelI912900KF(), a)
	if err != nil {
		t.Fatal(err)
	}
	dec := prep.(*Prepared).ReorderStats()
	if !dec.XResident {
		t.Fatal("x not reported LLC-resident on the stock machine")
	}
	if dec.Strategy != StrategyLength && dec.Strategy != StrategyIdentity {
		t.Fatalf("autotuner picked %v with x LLC-resident, want an O(rows) order", dec.Strategy)
	}
	// The discount rescales gather uniformly, so the graph orders'
	// gather advantage survives in the scores — it is just priced too
	// low to buy their seek costs.
	if rcm, l := dec.Scores[StrategyRCM], dec.Scores[StrategyLength]; rcm.GatherBytes >= l.GatherBytes {
		t.Fatalf("discounted gather lost its ordering: rcm %d vs length %d", rcm.GatherBytes, l.GatherBytes)
	}
}

// A row-shuffled narrow band is the honest no-win case for view-only
// reorders: a graph order would restore x locality but pays a stream
// seek on nearly every row, cancelling the win (measured on real
// hardware: ~1.0x or worse). The seek term must keep the autotuner on
// an O(rows) order here.
func TestReorderSeekKeepsLengthOnShuffledBand(t *testing.T) {
	a := shuffledBand(1<<14, 4)
	if a.NNZ() < reorderAutoMinNNZ {
		t.Fatalf("shuffled band under the gate: %d nnz", a.NNZ())
	}
	prep, err := New(Options{Reorder: ReorderAuto}).Prepare(amp.IntelI912900KF(), a)
	if err != nil {
		t.Fatal(err)
	}
	dec := prep.(*Prepared).ReorderStats()
	if dec.Strategy != StrategyLength && dec.Strategy != StrategyIdentity {
		t.Fatalf("autotuner picked %v on a shuffled band, want an O(rows) order", dec.Strategy)
	}
	// The graph candidates were scored, lost, and the decision records
	// why: the seek charge ate the gather saving.
	for _, s := range []ReorderStrategy{StrategyRCM, StrategyCluster} {
		sc := dec.Scores[s]
		if !sc.Evaluated {
			t.Fatalf("%v not evaluated above the gate", s)
		}
		if sc.SeekBytes <= 0 {
			t.Fatalf("%v paid no seek on a shuffled band (%+v)", s, sc)
		}
	}
	// Identity pays zero seek by construction.
	if sb := dec.Scores[StrategyIdentity].SeekBytes; sb != 0 {
		t.Fatalf("identity order charged %d seek bytes", sb)
	}
}

// The autotuner's pick can never score worse than the length-sort
// incumbent — on any corpus matrix, gate dropped so the graph orders
// genuinely compete. (The hysteresis margin makes this structural; the
// test guards it against regressions.) The picked instance must also
// still multiply correctly.
func TestReorderNeverBelowLengthOnCorpus(t *testing.T) {
	ungate(t)
	m := amp.IntelI912900KF()
	specs := gen.Corpus(gen.CorpusOptions{Size: 12, MinNNZ: 2000, MaxNNZ: 60000, Seed: 7})
	for _, sp := range specs {
		a := sp.Generate()
		prep, err := New(Options{Reorder: ReorderAuto}).Prepare(m, a)
		if err != nil {
			t.Fatalf("%s: %v", sp.Name, err)
		}
		dec := prep.(*Prepared).ReorderStats()
		lenSc := dec.Scores[StrategyLength]
		pickSc := dec.Scores[dec.Strategy]
		if !lenSc.Evaluated || !pickSc.Evaluated {
			t.Fatalf("%s: unevaluated scores in an auto decision", sp.Name)
		}
		if pickSc.Total > lenSc.Total {
			t.Fatalf("%s: pick %v total %d worse than length %d", sp.Name, dec.Strategy, pickSc.Total, lenSc.Total)
		}
		if dec.Strategy != StrategyLength && pickSc.Total*100 >= lenSc.Total*(100-reorderMarginPct) {
			t.Fatalf("%s: %v displaced length without clearing the margin (%d vs %d)",
				sp.Name, dec.Strategy, pickSc.Total, lenSc.Total)
		}
		x := make([]float64, a.Cols)
		for i := range x {
			x[i] = float64(i%11) - 5
		}
		y := make([]float64, a.Rows)
		want := make([]float64, a.Rows)
		prep.Compute(y, x)
		a.MulVec(want, x)
		for i := range y {
			if d := math.Abs(y[i] - want[i]); d > 1e-9*(1+math.Abs(want[i])) {
				t.Fatalf("%s: y[%d] = %v, want %v", sp.Name, i, y[i], want[i])
			}
		}
	}
}

// TestReorderAutoSpeedup is the measured acceptance gate: on a large
// shuffled strided stencil the autotuner's order must beat length-sort
// — which preserves the shuffle, every row being the same length — by
// at least 1.1x on the same pinned partition. A graph order only pays
// physically when x spills the host's last-level cache, which no
// unit-test-sized matrix does on a cache-rich host (the model's
// x-residency discount encodes exactly this), so the gate is opt-in:
// CI runs it on hardware it has sized the matrix for via
// HASPMV_REORDER_GATE=1; everywhere else it verifies the pick and
// skips the wall clock. BenchmarkReorderAuto reports the same pair as
// GFlops for benchdiff trend gating.
func TestReorderAutoSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock speedup gate; skipped in -short")
	}
	if raceEnabled {
		t.Skip("wall-clock speedup gate; meaningless under the race detector")
	}
	a := stridedStencil(1<<19, 4, 16)

	// The pick itself is deterministic and always enforced: on a machine
	// whose LLC x spills, auto must take a graph order.
	auto, err := New(Options{Reorder: ReorderAuto}).Prepare(smallLLCMachine(), a)
	if err != nil {
		t.Fatal(err)
	}
	dec := auto.(*Prepared).ReorderStats()
	if dec.Strategy != StrategyRCM && dec.Strategy != StrategyCluster {
		t.Fatalf("autotuner picked %v, want a graph order", dec.Strategy)
	}
	if os.Getenv("HASPMV_REORDER_GATE") == "" {
		t.Skip("wall-clock 1.1x gate needs x to spill the host LLC; set HASPMV_REORDER_GATE=1 on sized hardware")
	}
	length, err := New(Options{
		Reorder:     ReorderLength,
		PProportion: auto.(*Prepared).Plan().PProportion,
	}).Prepare(smallLLCMachine(), a)
	if err != nil {
		t.Fatal(err)
	}

	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = 1 + float64(i%5)/4
	}
	y := make([]float64, a.Rows)
	best := func(p exec.Prepared) time.Duration {
		p.Compute(y, x) // warm up streams and x
		b := time.Duration(math.MaxInt64)
		for i := 0; i < 5; i++ {
			t0 := time.Now()
			p.Compute(y, x)
			if d := time.Since(t0); d < b {
				b = d
			}
		}
		return b
	}
	// Interleaved best-of runs so host noise hits both orders.
	bAuto, bLen := best(auto), best(length)
	if b2 := best(auto); b2 < bAuto {
		bAuto = b2
	}
	if b2 := best(length); b2 < bLen {
		bLen = b2
	}
	speedup := float64(bLen) / float64(bAuto)
	t.Logf("strided stencil %d rows: length %v, %v %v, speedup %.2fx",
		a.Rows, bLen, dec.Strategy, bAuto, speedup)
	if speedup < 1.1 {
		t.Fatalf("reorder speedup %.2fx below the 1.1x acceptance gate", speedup)
	}
}
