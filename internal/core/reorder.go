package core

import (
	"fmt"
	"math"
	"sort"
	"time"

	"haspmv/internal/amp"
	"haspmv/internal/exec"
	"haspmv/internal/sparse"
)

// Pluggable row-reorder strategies. HACSR stores row-level indirection
// only (Perm, RowPtr, RowBeginNNZ — values and column indices never
// move), so *any* row permutation composes with the existing
// segment/descriptor machinery for free: Compute, segmented-sum
// execution, shard plans and Repartition all read the one reordered row
// order the permutation defines. The length sort of Algorithm 2 is just
// one permutation among several useful ones:
//
//   - identity keeps the natural order (matrices already banded or
//     already clustered lose locality under any resort),
//   - length-sort is the paper's short/long split (power-law matrices),
//   - RCM runs reverse Cuthill-McKee over the bipartite row-column
//     graph (rows adjacent when they share a column), recovering band
//     structure a row shuffle destroyed,
//   - cluster is a plain BFS over the same graph seeded in ascending
//     first-column order — cheaper than RCM, same x-locality idea.
//
// Because only rows move, classic RCM over the pattern of A (which
// assumes row i and column i are the same vertex) would be wrong; the
// bipartite graph is the correct structure for a row-only permutation.
//
// Under ReorderAuto every candidate permutation is scored with the same
// byte accounting the cost model already uses: the region-coherent
// index-stream bytes a partition over that order would pick
// (u32/u16/dia per nnz-balanced chunk, mirroring regionFormat), plus an
// x-gather locality term charging one cache line per distinct x line a
// row opens that its predecessor did not cover. The cheapest order
// wins, with a hysteresis margin so length-sort never loses to noise,
// and a time-budget gate so cheap matrices never pay for the graph
// traversals.

// ReorderMode selects the HACSR row-reorder strategy. The zero value is
// the paper's length sort, so existing callers are unchanged;
// ReorderAuto opts into per-matrix strategy selection.
type ReorderMode int

const (
	// ReorderLength is Algorithm 2's short/long length sort (default).
	ReorderLength ReorderMode = iota
	// ReorderAuto scores identity, length-sort, RCM and cluster orders
	// with the cost model's byte accounting and picks the cheapest
	// (graph strategies only above the time-budget gate).
	ReorderAuto
	// ReorderIdentity forces the natural row order.
	ReorderIdentity
	// ReorderRCM forces the bipartite reverse Cuthill-McKee order.
	ReorderRCM
	// ReorderCluster forces the first-column-seeded BFS cluster order.
	ReorderCluster
)

func (m ReorderMode) String() string {
	switch m {
	case ReorderLength:
		return "length"
	case ReorderAuto:
		return "auto"
	case ReorderIdentity:
		return "identity"
	case ReorderRCM:
		return "rcm"
	case ReorderCluster:
		return "cluster"
	default:
		return fmt.Sprintf("ReorderMode(%d)", int(m))
	}
}

// ReorderStrategy identifies one concrete row ordering (the outcome of
// a ReorderMode decision).
type ReorderStrategy uint8

const (
	StrategyLength ReorderStrategy = iota
	StrategyIdentity
	StrategyRCM
	StrategyCluster
	numStrategies = 4
)

func (s ReorderStrategy) String() string {
	switch s {
	case StrategyLength:
		return "length"
	case StrategyIdentity:
		return "identity"
	case StrategyRCM:
		return "rcm"
	case StrategyCluster:
		return "cluster"
	default:
		return fmt.Sprintf("ReorderStrategy(%d)", int(s))
	}
}

// ReorderScore is one candidate ordering's modeled cost in bytes.
type ReorderScore struct {
	// Evaluated is false when the candidate was never scored (forced
	// modes, or a graph strategy behind the time-budget gate).
	Evaluated bool
	// IndexBytes is the region-coherent index-stream footprint: the
	// permuted rows split into core-count nnz-balanced chunks, each
	// priced at the cheapest format all its rows support (mirroring
	// regionFormat's u32/u16/dia pick).
	IndexBytes int64
	// GatherBytes is the x-gather locality term: 64 bytes per distinct
	// x cache line a row opens, discounted by the fraction of its line
	// span the previous row already covered.
	GatherBytes int64
	// SeekBytes is the stream-scatter term. HACSR reorders by view —
	// values and indices never move — so a candidate order pays a
	// restart in the value/index streams at every row that does not
	// follow its predecessor in the original layout. Identity is free,
	// length-sort pays only where the short/long split actually moves a
	// row, and the graph orders pay on nearly every row; a graph order
	// must win more gather locality than it loses here. Omitted from
	// JSON when zero so store images written before the term existed
	// still round-trip byte-identically.
	SeekBytes int64 `json:",omitempty"`
	// Total is IndexBytes + GatherBytes + SeekBytes (the pick minimizes
	// it).
	Total int64
}

// ReorderDecision records which strategy Prepare chose and why.
type ReorderDecision struct {
	// Mode is the requested ReorderMode.
	Mode ReorderMode
	// Strategy is the ordering actually used.
	Strategy ReorderStrategy
	// Scores holds the per-strategy byte scores, indexed by
	// ReorderStrategy (unevaluated entries are zero).
	Scores [numStrategies]ReorderScore
	// Gated reports that the time-budget gate excluded the graph
	// strategies (RCM, cluster) from the auto pick.
	Gated bool
	// XResident reports that the x vector fits the machine's last-level
	// cache with room for the streamed value/index traffic, so the
	// gather term was discounted to L3-hit cost (see
	// reorderLLCHitDiscount). Omitted from JSON when false so store
	// images written before the field existed still round-trip
	// byte-identically.
	XResident bool `json:",omitempty"`
	// AnalysisNs is the time spent scoring candidates (auto mode only).
	AnalysisNs int64
}

// reorderAutoMinNNZ is the time-budget gate: under ReorderAuto the
// graph strategies (one CSC-style adjacency build plus a BFS — a few
// O(nnz) sweeps, comparable to the rest of Prepare) are only candidates
// for matrices of at least this many nonzeros. Cheap matrices keep the
// O(rows) length/identity choice. Forced modes bypass the gate. It is a
// variable so tests can force the graph paths on small inputs.
var reorderAutoMinNNZ = 1 << 16

// reorderSeekBytes is the flat per-row stream-restart charge of the
// scatter term: one cache line each for the value and index streams a
// discontiguous row starts in. Flat because the restart cost is the
// seek, not the row length — a long row amortizes it, which the
// per-row gather/index terms already capture.
const reorderSeekBytes = 128

// reorderMarginPct is the hysteresis margin of the auto pick: a rival
// ordering must beat length-sort's score by more than this percentage
// to displace it, so the default order never loses to model noise.
const reorderMarginPct = 2

// reorderLLCHitDiscount divides the gather term when the x vector is
// resident in the machine's last-level cache (8·cols within half the
// LLC, the other half feeding the streamed values and indices): a
// "missed" x line is then an L3 hit, roughly an order of magnitude
// cheaper than the DRAM fetch the full charge models. Without this the
// model invents gather wins that cache-rich machines cannot observe
// and pays real stream-seek costs to chase them.
const reorderLLCHitDiscount = 8

// machineLLCBytes is the last-level cache capacity the reorder model
// prices x residency against: one pool when the groups share the LLC
// (Intel), the sum of the populated groups' slices otherwise (AMD
// CCDs).
func machineLLCBytes(m *amp.Machine) int64 {
	p, e := m.PGroup(), m.EGroup()
	if p.L3SharedWithOtherGroup {
		return int64(p.L3Bytes)
	}
	var b int64
	if p.Cores > 0 {
		b += int64(p.L3Bytes)
	}
	if e.Cores > 0 {
		b += int64(e.L3Bytes)
	}
	return b
}

// reorderFor resolves the mode into a concrete HACSR view, the empty
// rows, and the decision record. nCores sizes the chunk split of the
// scoring model; llc is the machine's last-level cache capacity for
// the x-residency discount (0 = unknown, charge gather in full).
func reorderFor(a *sparse.CSR, base int, mode ReorderMode, nCores int, llc int64) (*HACSR, []int, ReorderDecision) {
	dec := ReorderDecision{Mode: mode, Strategy: StrategyLength}
	switch mode {
	case ReorderLength:
		h, empty := convert(a, base)
		return h, empty, dec
	case ReorderIdentity:
		dec.Strategy = StrategyIdentity
		return Identity(a), collectEmptyRows(a), dec
	case ReorderRCM, ReorderCluster:
		s := StrategyRCM
		if mode == ReorderCluster {
			s = StrategyCluster
		}
		perm := graphPerm(a, s)
		if perm == nil {
			// Graph order unavailable (>2^31 rows or nonzeros): the
			// natural order is the only permutation-free fallback.
			dec.Strategy = StrategyIdentity
			return Identity(a), collectEmptyRows(a), dec
		}
		dec.Strategy = s
		return fromPerm(a, perm), collectEmptyRows(a), dec
	}
	// ReorderAuto: score the candidates and take the cheapest order.
	t0 := time.Now()
	var perms [numStrategies][]int
	dec, perms = autoScores(a, base, nCores, llc, false)
	dec.AnalysisNs = int64(time.Since(t0))
	switch dec.Strategy {
	case StrategyIdentity:
		return Identity(a), collectEmptyRows(a), dec
	case StrategyRCM, StrategyCluster:
		return fromPerm(a, perms[dec.Strategy]), collectEmptyRows(a), dec
	default:
		h, empty := convert(a, base)
		return h, empty, dec
	}
}

// autoScores evaluates the candidate orderings and picks one. With
// includeGated the graph strategies are scored even under the gate
// (mminfo's report wants the numbers), but the pick still respects the
// gate so the report matches what Prepare would do.
func autoScores(a *sparse.CSR, base, nCores int, llc int64, includeGated bool) (ReorderDecision, [numStrategies][]int) {
	dec := ReorderDecision{Mode: ReorderAuto, Strategy: StrategyLength}
	var perms [numStrategies][]int
	if int64(a.NNZ()) > math.MaxInt32 {
		// The scoring arrays and graph buffers are int32-indexed; a
		// matrix this large keeps the default order.
		dec.Gated = true
		return dec, perms
	}
	st := computeReorderStats(a)
	st.xResident = llc > 0 && 8*int64(a.Cols) <= llc/2
	dec.XResident = st.xResident
	perms[StrategyLength] = lengthPerm(a, base)
	dec.Scores[StrategyLength] = st.score(perms[StrategyLength], nCores)
	dec.Scores[StrategyIdentity] = st.score(nil, nCores)
	dec.Gated = a.NNZ() < reorderAutoMinNNZ
	if !dec.Gated || includeGated {
		if p := graphPerm(a, StrategyRCM); p != nil {
			perms[StrategyRCM] = p
			dec.Scores[StrategyRCM] = st.score(p, nCores)
		}
		if p := graphPerm(a, StrategyCluster); p != nil {
			perms[StrategyCluster] = p
			dec.Scores[StrategyCluster] = st.score(p, nCores)
		}
	}
	// Length-sort is the incumbent: a rival must beat its score by the
	// hysteresis margin. Cluster is tried before RCM so a tie between
	// the two graph orders keeps the cheaper build.
	lenTotal := dec.Scores[StrategyLength].Total
	best, bestTotal := StrategyLength, lenTotal
	for _, s := range [...]ReorderStrategy{StrategyIdentity, StrategyCluster, StrategyRCM} {
		sc := dec.Scores[s]
		if !sc.Evaluated {
			continue
		}
		if dec.Gated && (s == StrategyRCM || s == StrategyCluster) {
			continue
		}
		if sc.Total*100 < lenTotal*(100-reorderMarginPct) && sc.Total < bestTotal {
			best, bestTotal = s, sc.Total
		}
	}
	dec.Strategy = best
	return dec, perms
}

// fromPerm builds the HACSR view of a under an explicit row permutation
// (perm maps reordered position -> original row). Base 0 marks the view
// as order-agnostic: Validate skips the short/long split check, exactly
// as it does for Identity.
func fromPerm(a *sparse.CSR, perm []int) *HACSR {
	m := a.Rows
	buf := make([]int, 3*m+1)
	h := &HACSR{
		Rows: m, Cols: a.Cols, Base: 0,
		Perm:        buf[:m:m],
		RowBeginNNZ: buf[m : 2*m : 2*m],
		RowPtr:      buf[2*m:],
		NumShort:    m,
	}
	exec.ParallelRanges(m, prepWidth(), prepGrain, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			o := perm[i]
			h.Perm[i] = o
			h.RowBeginNNZ[i] = a.RowPtr[o]
			h.RowPtr[i+1] = a.RowPtr[o+1] - a.RowPtr[o]
		}
	})
	prefixSum(h.RowPtr[1:])
	return h
}

// reorderStats is the per-original-row profile the scoring model reads:
// length, column extent, distinct x cache lines, and consecutive-column
// run count. One O(nnz) sweep computes it; every candidate ordering is
// then scored in O(rows).
type reorderStats struct {
	rows, nnz int
	length    []int32
	lines     []int32
	runs      []int32
	// minCol/maxCol are -1 for empty rows.
	minCol, maxCol []int
	// rowPtr aliases the matrix's row pointer for the scatter term
	// (stream adjacency is an nnz-position question, and empty rows do
	// not break it).
	rowPtr []int
	// xResident discounts the gather term to L3-hit cost (set by
	// autoScores from the machine's LLC capacity).
	xResident bool
}

func computeReorderStats(a *sparse.CSR) *reorderStats {
	m := a.Rows
	st := &reorderStats{
		rows: m, nnz: a.NNZ(),
		length: make([]int32, m),
		lines:  make([]int32, m),
		runs:   make([]int32, m),
		minCol: make([]int, m),
		maxCol: make([]int, m),
		rowPtr: a.RowPtr,
	}
	exec.ParallelRanges(m, prepWidth(), prepGrain, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			rlo, rhi := a.RowPtr[i], a.RowPtr[i+1]
			st.length[i] = int32(rhi - rlo)
			if rlo == rhi {
				st.minCol[i], st.maxCol[i] = -1, -1
				continue
			}
			mn := a.ColIdx[rlo]
			mx, prev := mn, mn
			runs := int32(1)
			lines := int32(1)
			ben := mn / doublesPerLine
			for k := rlo + 1; k < rhi; k++ {
				c := a.ColIdx[k]
				if c < mn {
					mn = c
				} else if c > mx {
					mx = c
				}
				if c != prev+1 {
					runs++
				}
				prev = c
				if line := c / doublesPerLine; line > ben {
					lines++
					ben = line
				}
			}
			st.minCol[i], st.maxCol[i] = mn, mx
			st.runs[i], st.lines[i] = runs, lines
		}
	})
	return st
}

// score prices one candidate ordering (perm nil = identity): the
// permuted rows are split into nCores nnz-balanced chunks, each chunk
// priced at the cheapest index format all its rows support (the same
// u32/u16/dia pick regionFormat makes), plus the x-gather locality term
// — 64 bytes per distinct x line a row opens, discounted by how much of
// its line span the previous row in the order already covered — plus
// the stream-scatter term: reorderSeekBytes for every row whose
// nonzeros do not follow its predecessor's in the original layout
// (values and indices never move, so the kernels restart those streams
// there). Chunk boundaries reset both carries (regions run on
// different cores).
func (st *reorderStats) score(perm []int, nCores int) ReorderScore {
	sc := ReorderScore{Evaluated: true}
	if nCores < 1 {
		nCores = 1
	}
	target := st.nnz/nCores + 1
	var idxBytes, seek int64
	var gather float64
	chunkNNZ := 0
	runsIn, inel := int64(0), int64(0)
	all16 := true
	flush := func() {
		n := int64(chunkNNZ)
		bytes := 4 * n
		if all16 {
			if b := 2 * n; b < bytes {
				bytes = b
			}
		}
		if runsIn > 0 {
			if b := 8*runsIn + 4*inel; b < bytes {
				bytes = b
			}
		}
		idxBytes += bytes
		chunkNNZ, runsIn, inel, all16 = 0, 0, 0, true
	}
	acc, bound := 0, target
	prevLo, prevHi := -1, -1
	prevEnd := -1
	for i := 0; i < st.rows; i++ {
		r := i
		if perm != nil {
			r = perm[i]
		}
		l := int(st.length[r])
		if l > 0 {
			if prevEnd >= 0 && st.rowPtr[r] != prevEnd {
				seek += reorderSeekBytes
			}
			prevEnd = st.rowPtr[r+1]
			if st.maxCol[r]-st.minCol[r] > maxSpan16 {
				all16 = false
			}
			rc := st.runs[r]
			if (rc == 1 && l >= diaMinSingleRunLen) || (rc > 1 && l >= diaMinRunLen*int(rc)) {
				runsIn += int64(rc)
			} else {
				inel += int64(l)
			}
			lo, hi := st.minCol[r]/doublesPerLine, st.maxCol[r]/doublesPerLine
			frac := 0.0
			if prevLo >= 0 {
				if ov := min(hi, prevHi) - max(lo, prevLo) + 1; ov > 0 {
					if span := hi - lo + 1; ov >= span {
						frac = 1
					} else {
						frac = float64(ov) / float64(span)
					}
				}
			}
			gather += 64 * float64(st.lines[r]) * (1 - frac)
			prevLo, prevHi = lo, hi
		}
		chunkNNZ += l
		acc += l
		if acc >= bound {
			flush()
			bound = acc + target
			prevLo, prevHi = -1, -1
			prevEnd = -1
		}
	}
	flush()
	if st.xResident {
		gather /= reorderLLCHitDiscount
	}
	sc.IndexBytes = idxBytes
	sc.GatherBytes = int64(gather)
	sc.SeekBytes = seek
	sc.Total = sc.IndexBytes + sc.GatherBytes + sc.SeekBytes
	return sc
}

// lengthPerm materializes Algorithm 2's length-sort order as a plain
// permutation (the serial convert loop without the HACSR build), for
// the scoring model.
func lengthPerm(a *sparse.CSR, base int) []int {
	m := a.Rows
	perm := make([]int, m)
	front, tail := 0, m-1
	for i := 0; i < m; i++ {
		if a.RowPtr[i+1]-a.RowPtr[i] < base {
			perm[front] = i
			front++
		} else {
			perm[tail] = i
			tail--
		}
	}
	return perm
}

// graphPerm builds the RCM or cluster row order over the bipartite
// row-column graph. Returns nil when the int32 buffers cannot index the
// matrix (>2^31 rows or nonzeros).
func graphPerm(a *sparse.CSR, s ReorderStrategy) []int {
	m, nnz := a.Rows, a.NNZ()
	if int64(m) > math.MaxInt32 || int64(nnz) > math.MaxInt32 {
		return nil
	}
	perm := make([]int, m)
	if m == 0 {
		return perm
	}
	colPtr, colRows, colOf := buildColAdjacency(a)
	var seeds []int32
	if s == StrategyRCM {
		seeds = rowsByLength(a)
	} else {
		seeds = rowsByFirstCol(a, colOf, len(colPtr)-1)
	}
	visitedRow := make([]bool, m)
	visitedCol := make([]bool, len(colPtr)-1)
	order := make([]int32, 0, m)
	var batch []int32
	head := 0
	for _, seed := range seeds {
		if visitedRow[seed] {
			continue
		}
		visitedRow[seed] = true
		order = append(order, seed)
		for head < len(order) {
			r := int(order[head])
			head++
			batch = batch[:0]
			for k := a.RowPtr[r]; k < a.RowPtr[r+1]; k++ {
				c := colOf[k]
				if visitedCol[c] {
					continue
				}
				visitedCol[c] = true
				for j := colPtr[c]; j < colPtr[c+1]; j++ {
					if r2 := colRows[j]; !visitedRow[r2] {
						visitedRow[r2] = true
						batch = append(batch, r2)
					}
				}
			}
			if s == StrategyRCM && len(batch) > 1 {
				// Cuthill-McKee visits neighbors in ascending degree;
				// ties break on row index for determinism.
				sort.Slice(batch, func(i, j int) bool {
					bi, bj := int(batch[i]), int(batch[j])
					li := a.RowPtr[bi+1] - a.RowPtr[bi]
					lj := a.RowPtr[bj+1] - a.RowPtr[bj]
					if li != lj {
						return li < lj
					}
					return bi < bj
				})
			}
			order = append(order, batch...)
		}
	}
	if s == StrategyRCM {
		for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
			order[i], order[j] = order[j], order[i]
		}
	}
	for i, r := range order {
		perm[i] = int(r)
	}
	return perm
}

// buildColAdjacency builds the column->rows adjacency of the bipartite
// graph. Columns are compacted to dense ids when the column space is
// much larger than the matrix (hypersparse fuzz shapes), in
// first-encounter order so the result stays deterministic.
func buildColAdjacency(a *sparse.CSR) (colPtr, colRows, colOf []int32) {
	m, nnz := a.Rows, a.NNZ()
	colOf = make([]int32, nnz)
	var c int
	if int64(a.Cols) <= 4*int64(nnz)+(1<<16) && int64(a.Cols) <= math.MaxInt32 {
		c = a.Cols
		for k := 0; k < nnz; k++ {
			colOf[k] = int32(a.ColIdx[k])
		}
	} else {
		ids := make(map[int]int32, 1024)
		for k := 0; k < nnz; k++ {
			id, ok := ids[a.ColIdx[k]]
			if !ok {
				id = int32(len(ids))
				ids[a.ColIdx[k]] = id
			}
			colOf[k] = id
		}
		c = len(ids)
	}
	colPtr = make([]int32, c+1)
	for _, ci := range colOf {
		colPtr[ci+1]++
	}
	for i := 0; i < c; i++ {
		colPtr[i+1] += colPtr[i]
	}
	colRows = make([]int32, nnz)
	next := append([]int32(nil), colPtr[:c]...)
	for r := 0; r < m; r++ {
		for k := a.RowPtr[r]; k < a.RowPtr[r+1]; k++ {
			ci := colOf[k]
			colRows[next[ci]] = int32(r)
			next[ci]++
		}
	}
	return colPtr, colRows, colOf
}

// rowsByLength orders the rows by ascending length (stable on index)
// with a counting sort — RCM's min-degree seed order.
func rowsByLength(a *sparse.CSR) []int32 {
	m := a.Rows
	maxLen := 0
	for i := 0; i < m; i++ {
		if l := a.RowLen(i); l > maxLen {
			maxLen = l
		}
	}
	cnt := make([]int32, maxLen+2)
	for i := 0; i < m; i++ {
		cnt[a.RowLen(i)+1]++
	}
	for l := 1; l < len(cnt); l++ {
		cnt[l] += cnt[l-1]
	}
	out := make([]int32, m)
	for i := 0; i < m; i++ {
		l := a.RowLen(i)
		out[cnt[l]] = int32(i)
		cnt[l]++
	}
	return out
}

// rowsByFirstCol orders the rows by ascending first-column id (stable
// on index) — the cluster strategy's seed order; empty rows sort last.
func rowsByFirstCol(a *sparse.CSR, colOf []int32, cols int) []int32 {
	m := a.Rows
	key := func(i int) int {
		if a.RowPtr[i] == a.RowPtr[i+1] {
			return cols
		}
		return int(colOf[a.RowPtr[i]])
	}
	cnt := make([]int32, cols+2)
	for i := 0; i < m; i++ {
		cnt[key(i)+1]++
	}
	for c := 1; c < len(cnt); c++ {
		cnt[c] += cnt[c-1]
	}
	out := make([]int32, m)
	for i := 0; i < m; i++ {
		k := key(i)
		out[cnt[k]] = int32(i)
		cnt[k]++
	}
	return out
}

// ReorderAnalysis is the standalone reordering report mminfo prints:
// every strategy scored (including gated ones), the row-permuted
// bandwidth each order achieves, and the strategy the autotuner would
// pick under its gate and margin.
type ReorderAnalysis struct {
	Decision ReorderDecision
	// BandwidthNatural is the matrix's bandwidth in natural order.
	BandwidthNatural int
	// Bandwidth[s] is max |reordered row - column| under strategy s
	// (-1 when the strategy was not evaluated).
	Bandwidth [numStrategies]int
}

// AnalyzeReorder scores every reorder strategy on a for machine m
// (graph strategies included even under the time-budget gate — this is
// a report, not the Prepare hot path) and reports the pick Prepare's
// autotuner would make, including the machine-dependent x-residency
// discount.
func AnalyzeReorder(a *sparse.CSR, m *amp.Machine) ReorderAnalysis {
	base := AutoBase(a)
	dec, perms := autoScores(a, base, len(m.Cores(amp.PAndE)), machineLLCBytes(m), true)
	an := ReorderAnalysis{Decision: dec, BandwidthNatural: sparse.PermutedBandwidth(a, nil)}
	for s := 0; s < numStrategies; s++ {
		if !dec.Scores[s].Evaluated {
			an.Bandwidth[s] = -1
			continue
		}
		switch ReorderStrategy(s) {
		case StrategyIdentity:
			an.Bandwidth[s] = an.BandwidthNatural
		default:
			an.Bandwidth[s] = sparse.PermutedBandwidth(a, perms[s])
		}
	}
	return an
}

// ReorderStats returns the reorder decision Prepare recorded: the
// requested mode, the chosen strategy, and the per-strategy scores when
// the autotuner evaluated them.
func (p *Prepared) ReorderStats() ReorderDecision { return p.reorder }
