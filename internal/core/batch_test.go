package core

import (
	"math"
	"math/rand"
	"testing"

	"haspmv/internal/algtest"
	"haspmv/internal/amp"
	"haspmv/internal/exec"
	"haspmv/internal/gen"
)

func TestComputeBatchMatchesCompute(t *testing.T) {
	m := amp.IntelI912900KF()
	for _, name := range []string{"powerlaw", "alternating-empty", "hub-row", "tall-rect"} {
		a := algtest.Matrix(name)
		prep, err := New(Options{}).Prepare(m, a)
		if err != nil {
			t.Fatal(err)
		}
		p := prep.(*Prepared)
		r := rand.New(rand.NewSource(77))
		const nv = 5
		X := make([][]float64, nv)
		Y := make([][]float64, nv)
		for v := range X {
			X[v] = make([]float64, a.Cols)
			for i := range X[v] {
				X[v][i] = r.NormFloat64()
			}
			Y[v] = make([]float64, a.Rows)
			for i := range Y[v] {
				Y[v][i] = 1e300 // poison
			}
		}
		p.ComputeBatch(Y, X)
		for v := range X {
			want := make([]float64, a.Rows)
			p.Compute(want, X[v])
			for i := range want {
				if Y[v][i] != want[i] {
					t.Fatalf("%s: batch[%d][%d] = %v, want %v (bitwise)", name, v, i, Y[v][i], want[i])
				}
			}
		}
	}
}

// TestComputeBatchMatchesComputeAcrossNV sweeps the vector-tiling
// dispatch: every remainder class of the 8/4/2/1 block cascade (nv = 17
// exercises 8+8+1, 5 exercises 4+1, ...) must agree with per-vector
// Compute, including on rows cut across regions (hub-row's giant row) and
// after shrinking nv below a previous call's capacity (scratch reuse).
func TestComputeBatchMatchesComputeAcrossNV(t *testing.T) {
	m := amp.IntelI912900KF()
	for _, name := range []string{"powerlaw", "hub-row", "alternating-empty"} {
		a := algtest.Matrix(name)
		prep, err := New(Options{}).Prepare(m, a)
		if err != nil {
			t.Fatal(err)
		}
		p := prep.(*Prepared)
		cut := false
		for _, reg := range p.Regions() {
			if reg.Lo < reg.Hi && p.Format().RowPtr[reg.StartRow] < reg.Lo {
				cut = true
			}
		}
		if name == "hub-row" && !cut {
			t.Fatal("hub-row partition produced no mid-row cut; batch epilogue untested")
		}
		r := rand.New(rand.NewSource(42))
		// Descending order makes later iterations reuse a scratch whose
		// capacity exceeds nv.
		for _, nv := range []int{17, 8, 5, 3, 2, 1} {
			X := make([][]float64, nv)
			Y := make([][]float64, nv)
			for v := range X {
				X[v] = make([]float64, a.Cols)
				for i := range X[v] {
					X[v][i] = r.NormFloat64()
				}
				Y[v] = make([]float64, a.Rows)
				for i := range Y[v] {
					Y[v][i] = 1e300 // poison
				}
			}
			p.ComputeBatch(Y, X)
			for v := range X {
				want := make([]float64, a.Rows)
				p.Compute(want, X[v])
				for i := range want {
					if Y[v][i] != want[i] {
						t.Fatalf("%s nv=%d: batch[%d][%d] = %v, want %v (bitwise)", name, nv, v, i, Y[v][i], want[i])
					}
				}
			}
		}
	}
}

// The pooled workspace must survive capacity growth: a small batch, then
// one larger than the rounded-up capacity, then small again.
func TestComputeBatchScratchGrowth(t *testing.T) {
	m := amp.IntelI912900KF()
	a := algtest.Matrix("hub-row")
	prep, err := New(Options{}).Prepare(m, a)
	if err != nil {
		t.Fatal(err)
	}
	p := prep.(*Prepared)
	r := rand.New(rand.NewSource(7))
	for _, nv := range []int{2, 17, 3, 9, 1} {
		X := make([][]float64, nv)
		Y := make([][]float64, nv)
		for v := range X {
			X[v] = make([]float64, a.Cols)
			for i := range X[v] {
				X[v][i] = r.NormFloat64()
			}
			Y[v] = make([]float64, a.Rows)
		}
		p.ComputeBatch(Y, X)
		for v := range X {
			want := make([]float64, a.Rows)
			a.MulVec(want, X[v])
			for i := range want {
				if math.Abs(Y[v][i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
					t.Fatalf("nv=%d vec %d row %d: got %v want %v", nv, v, i, Y[v][i], want[i])
				}
			}
		}
	}
}

func TestComputeBatchViaExecHelper(t *testing.T) {
	m := amp.IntelI913900KF()
	a := gen.Representative("dawson5", 64)
	prep, err := New(Options{}).Prepare(m, a)
	if err != nil {
		t.Fatal(err)
	}
	// The helper must route to the fused path for core's Prepared...
	if _, ok := exec.Prepared(prep).(exec.BatchPrepared); !ok {
		t.Fatal("core Prepared does not implement BatchPrepared")
	}
	X := [][]float64{make([]float64, a.Cols), make([]float64, a.Cols)}
	Y := [][]float64{make([]float64, a.Rows), make([]float64, a.Rows)}
	for i := range X[0] {
		X[0][i] = 1
		X[1][i] = float64(i % 3)
	}
	exec.ComputeBatch(prep, Y, X)
	for v := range X {
		want := make([]float64, a.Rows)
		a.MulVec(want, X[v])
		for i := range want {
			if math.Abs(Y[v][i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
				t.Fatalf("vector %d row %d", v, i)
			}
		}
	}
}

func TestComputeBatchValidation(t *testing.T) {
	m := amp.IntelI912900KF()
	a := algtest.Matrix("fig1-8x8")
	prep, _ := New(Options{}).Prepare(m, a)
	p := prep.(*Prepared)
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	good := [][]float64{make([]float64, a.Cols)}
	goodY := [][]float64{make([]float64, a.Rows)}
	expectPanic("size mismatch", func() { p.ComputeBatch(goodY, append(good, good[0])) })
	expectPanic("short x", func() { p.ComputeBatch(goodY, [][]float64{make([]float64, 2)}) })
	expectPanic("short y", func() { p.ComputeBatch([][]float64{make([]float64, 2)}, good) })
	// Empty batch is a no-op.
	p.ComputeBatch(nil, nil)
}
