package core

import (
	"math"
	"math/rand"
	"testing"

	"haspmv/internal/algtest"
	"haspmv/internal/amp"
	"haspmv/internal/exec"
	"haspmv/internal/gen"
	"haspmv/internal/telemetry"
	"haspmv/internal/telemetry/tracing"
)

func TestExecModeString(t *testing.T) {
	for m, want := range map[ExecMode]string{
		ExecAuto: "auto", ExecSerial: "serial", ExecSegSum: "segsum", ExecMode(9): "ExecMode(9)",
	} {
		if got := m.String(); got != want {
			t.Errorf("ExecMode(%d).String() = %q, want %q", int(m), got, want)
		}
	}
}

// Forced segmented-sum execution must pass the full adversarial battery
// under every option family the serial path passes.
func TestSegSumCorrectnessAllMatrices(t *testing.T) {
	m := amp.IntelI912900KF()
	for _, opts := range []Options{
		{Exec: ExecSegSum},
		{Exec: ExecSegSum, Index: IndexReference},
		{Exec: ExecSegSum, DisableReorder: true},
		{Exec: ExecSegSum, OneLevel: true},
		{Exec: ExecSegSum, Config: amp.EOnly},
		{Exec: ExecSegSum, Base: 2},
	} {
		alg := New(opts)
		t.Run(alg.Name()+"/"+opts.Index.String(), func(t *testing.T) {
			algtest.CheckAlgorithm(t, alg, m)
		})
	}
	algtest.CheckProperty(t, New(Options{Exec: ExecSegSum}), m, 10)
}

// segsumPair prepares the same matrix under the serial oracle and forced
// segmented execution with identical partitions.
func segsumPair(t *testing.T, name string) (serial, seg *Prepared) {
	t.Helper()
	a := algtest.Matrix(name)
	m := amp.IntelI912900KF()
	sp, err := New(Options{Exec: ExecSerial}).Prepare(m, a)
	if err != nil {
		t.Fatal(err)
	}
	serial = sp.(*Prepared)
	gp, err := New(Options{Exec: ExecSegSum, PProportion: serial.Plan().PProportion}).Prepare(m, a)
	if err != nil {
		t.Fatal(err)
	}
	seg = gp.(*Prepared)
	return serial, seg
}

// The acceptance contract: segmented execution is bit-identical to the
// serial-epilogue path — single vector, batch, and after Repartition
// moves the cut rows around.
func TestSegSumBitIdenticalToSerial(t *testing.T) {
	for _, tc := range algtest.Battery() {
		if tc.A.Rows == 0 || tc.A.Cols == 0 {
			continue
		}
		t.Run(tc.Name, func(t *testing.T) {
			serial, seg := segsumPair(t, tc.Name)
			r := rand.New(rand.NewSource(7))
			x := make([]float64, tc.A.Cols)
			for i := range x {
				x[i] = r.NormFloat64()
			}
			want := make([]float64, tc.A.Rows)
			got := make([]float64, tc.A.Rows)
			check := func(stage string) {
				t.Helper()
				serial.Compute(want, x)
				seg.Compute(got, x)
				for i := range want {
					if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
						t.Fatalf("%s: y[%d] = %x, want %x", stage, i,
							math.Float64bits(got[i]), math.Float64bits(want[i]))
					}
				}
				const nv = 5
				X, Want, Got := make([][]float64, nv), make([][]float64, nv), make([][]float64, nv)
				for v := range X {
					X[v] = make([]float64, tc.A.Cols)
					copy(X[v], x)
					if tc.A.Cols > 0 {
						X[v][v%tc.A.Cols] += float64(v)
					}
					Want[v] = make([]float64, tc.A.Rows)
					Got[v] = make([]float64, tc.A.Rows)
				}
				serial.ComputeBatch(Want, X)
				seg.ComputeBatch(Got, X)
				for v := range Want {
					for i := range Want[v] {
						if math.Float64bits(Got[v][i]) != math.Float64bits(Want[v][i]) {
							t.Fatalf("%s: Y[%d][%d] = %x, want %x", stage, v, i,
								math.Float64bits(Got[v][i]), math.Float64bits(Want[v][i]))
						}
					}
				}
			}
			check("prepare")
			plan := Plan{PProportion: 0.3}
			if err := serial.Repartition(plan); err != nil {
				t.Fatal(err)
			}
			if err := seg.Repartition(plan); err != nil {
				t.Fatal(err)
			}
			check("repartition")
		})
	}
}

// hub-row splits one row holding a third of the matrix across the
// 12900KF's 16 regions: forced segmented execution must arm the parallel
// patch on a group spanning 3+ cores, with every continuation region
// pointing back at its head.
func TestSegSumGroupBookkeeping(t *testing.T) {
	_, seg := segsumPair(t, "hub-row")
	regs := seg.Regions()
	maxSpan := 0
	for i, r := range regs {
		if r.ContFirst >= 0 {
			if !r.PatchCont {
				t.Errorf("region %d continues group %d but is not armed to patch", i, r.ContFirst)
			}
			head := regs[r.ContFirst]
			if !head.PatchHead || head.HeadLast < i {
				t.Errorf("region %d's head %d has HeadLast %d PatchHead %v", i, r.ContFirst, head.HeadLast, head.PatchHead)
			}
		}
		if r.HeadSpan > maxSpan {
			maxSpan = r.HeadSpan
		}
		if r.Lo < r.Hi && !r.SegSum {
			t.Errorf("region %d not segmented under ExecSegSum", i)
		}
	}
	if maxSpan < 3 {
		t.Fatalf("largest cut-row group spans %d regions, want >= 3 (hub row not split?)", maxSpan)
	}
	if seg.SegSumNNZ() != int64(seg.mat.NNZ()) {
		t.Fatalf("SegSumNNZ = %d, want all %d", seg.SegSumNNZ(), seg.mat.NNZ())
	}
}

// ExecAuto must turn segmented execution on where the skew predicts it
// pays (a hub row, a power-law profile) and leave regular matrices on
// the serial path.
func TestExecAutoDispatch(t *testing.T) {
	m := amp.IntelI912900KF()
	for _, name := range []string{"hub-row", "powerlaw"} {
		p, err := New(Options{}).Prepare(m, algtest.Matrix(name))
		if err != nil {
			t.Fatal(err)
		}
		if n := p.(*Prepared).SegSumNNZ(); n == 0 {
			t.Errorf("%s: auto dispatch assigned no segmented nnz (skew %+v)", name, p.(*Prepared).RowSkew())
		}
	}
	regular := gen.Spec{
		Name: "regular", Rows: 4000, Cols: 4000, TargetNNZ: 400_000,
		Dist: gen.ConstLen{L: 100}, Place: gen.Banded, Seed: 5,
	}.Generate()
	p, err := New(Options{}).Prepare(m, regular)
	if err != nil {
		t.Fatal(err)
	}
	rp := p.(*Prepared)
	if rp.skew.PreferSegSum(16) {
		t.Fatalf("regular matrix skew %+v passes the gate", rp.skew)
	}
	if n := rp.SegSumNNZ(); n != 0 {
		t.Errorf("regular matrix: auto dispatch assigned %d segmented nnz, want 0", n)
	}
}

// The satellite guard: the forced-segmented path keeps the zero-alloc
// contract, directly and through the exec dispatch helpers, for single
// vectors and batches.
func TestComputeSegSumZeroAllocs(t *testing.T) {
	if telemetry.Enabled() {
		t.Skip("telemetry enabled by another test")
	}
	a := algtest.Matrix("hub-row")
	prep, err := New(Options{Exec: ExecSegSum}).Prepare(amp.IntelI912900KF(), a)
	if err != nil {
		t.Fatal(err)
	}
	p := prep.(*Prepared)
	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = float64(i%7) - 3
	}
	y := make([]float64, a.Rows)
	var bd tracing.ComputeBreakdown
	p.Compute(y, x) // warm scratch
	if n := testing.AllocsPerRun(100, func() { p.Compute(y, x) }); n != 0 {
		t.Fatalf("Compute allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		bd.Reset()
		exec.ComputeTraced(p, y, x, &bd)
	}); n != 0 {
		t.Fatalf("exec.ComputeTraced allocates %.1f/op, want 0", n)
	}
	const maxNV = 9
	X := make([][]float64, maxNV)
	Y := make([][]float64, maxNV)
	for v := range X {
		X[v] = x
		Y[v] = make([]float64, a.Rows)
	}
	p.ComputeBatch(Y, X) // warm batch scratch at the widest width
	for _, nv := range []int{maxNV, 4, 1} {
		if n := testing.AllocsPerRun(100, func() {
			bd.Reset()
			exec.ComputeBatchTraced(p, Y[:nv], X[:nv], &bd)
		}); n != 0 {
			t.Fatalf("nv=%d: exec.ComputeBatchTraced allocates %.1f/op, want 0", nv, n)
		}
	}
}
