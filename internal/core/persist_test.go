package core

import (
	"math"
	"testing"

	"haspmv/internal/algtest"
	"haspmv/internal/amp"
	"haspmv/internal/kernel"
)

func snapshotOf(t *testing.T, opts Options) (*Prepared, *PreparedSnapshot) {
	t.Helper()
	m := amp.IntelI913900KF()
	a := algtest.Matrix("powerlaw")
	prep, err := New(opts).Prepare(m, a)
	if err != nil {
		t.Fatal(err)
	}
	p := prep.(*Prepared)
	return p, p.Snapshot()
}

// Restore from a snapshot must serve the exact bits of the original
// instance — same partition, formats, modes and kernels.
func TestSnapshotRestoreBitIdentical(t *testing.T) {
	for _, opts := range []Options{
		{},
		{Index: IndexReference, Value: ValueReference},
		{Exec: ExecSegSum},
		{Reorder: ReorderAuto},
		{Metric: NNZCost, OneLevel: true},
	} {
		p, snap := snapshotOf(t, opts)
		r, err := RestorePrepared(amp.IntelI913900KF(), snap)
		if err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		rows, cols := snap.Meta.Rows, snap.Meta.Cols
		x := make([]float64, cols)
		for i := range x {
			x[i] = float64(i%13) - 6
		}
		y0, y1 := make([]float64, rows), make([]float64, rows)
		p.Compute(y0, x)
		r.Compute(y1, x)
		for i := range y0 {
			if math.Float64bits(y0[i]) != math.Float64bits(y1[i]) {
				t.Fatalf("%+v: row %d differs after restore", opts, i)
			}
		}
		if len(r.Regions()) != len(p.Regions()) {
			t.Fatalf("%+v: region count %d vs %d", opts, len(r.Regions()), len(p.Regions()))
		}
	}
}

// A checksum-clean but shape-inconsistent snapshot must fail with an
// error, not an index panic inside a kernel.
func TestRestoreRejectsMalformedSnapshots(t *testing.T) {
	m := amp.IntelI913900KF()
	muts := []struct {
		name string
		mut  func(s *PreparedSnapshot)
	}{
		{"nil-machine", func(s *PreparedSnapshot) { s.Meta.MachineName = "no-such-machine" }},
		{"rowptr-short", func(s *PreparedSnapshot) { s.RowPtr = s.RowPtr[:len(s.RowPtr)-1] }},
		{"val-short", func(s *PreparedSnapshot) { s.Val = s.Val[:len(s.Val)-1] }},
		{"no-cols", func(s *PreparedSnapshot) { s.ColIdx, s.Col32 = nil, nil }},
		{"hperm-short", func(s *PreparedSnapshot) { s.HPerm = s.HPerm[:len(s.HPerm)-1] }},
		{"hrowptr-bad-nnz", func(s *PreparedSnapshot) {
			rp := append([]int(nil), s.HRowPtr...)
			rp[len(rp)-1]++
			s.HRowPtr = rp
		}},
		{"cs-short", func(s *PreparedSnapshot) { s.CS = s.CS[:len(s.CS)-1] }},
		{"bad-proportion", func(s *PreparedSnapshot) { s.Meta.Opts.PProportion = 1.5 }},
		{"negative-rows", func(s *PreparedSnapshot) { s.Meta.Rows = -1 }},
		{"palette-missing", func(s *PreparedSnapshot) {
			s.Meta.ValFormat = ValPalette
			s.PalIdx, s.Pal = nil, nil
		}},
		{"segs-short", func(s *PreparedSnapshot) {
			s.Segs = make([]kernel.Segment, 1)
		}},
	}
	for _, tc := range muts {
		t.Run(tc.name, func(t *testing.T) {
			_, snap := snapshotOf(t, Options{})
			tc.mut(snap)
			if _, err := RestorePrepared(m, snap); err == nil {
				t.Fatal("malformed snapshot restored without error")
			}
		})
	}
	if _, err := RestorePrepared(nil, snapshotOf2(t)); err == nil {
		t.Fatal("nil machine accepted")
	}
}

func snapshotOf2(t *testing.T) *PreparedSnapshot {
	_, s := snapshotOf(t, Options{})
	return s
}
