package core

import (
	"sync"

	"haspmv/internal/telemetry"
)

// Adapter telemetry (gated; the adapter itself works with telemetry off).
var (
	cAdaptRebalances = telemetry.NewCounter("core_adapt_rebalances")
	cAdaptRollbacks  = telemetry.NewCounter("core_adapt_rollbacks")
	gAdaptImbalance  = telemetry.NewGauge("core_adapt_imbalance_milli")
	gAdaptProportion = telemetry.NewGauge("core_adapt_proportion_milli")
)

// AdapterOptions tune the feedback loop. The zero value selects the
// defaults noted on each field.
type AdapterOptions struct {
	// Every is the evaluation epoch: how many multiplies between
	// rebalance decisions. Default 4.
	Every int
	// Hysteresis is the relative per-core imbalance (max/mean - 1) below
	// which the partition is left alone. Default 0.05.
	Hysteresis float64
	// Gain is the step fraction toward the measured-rate plan per
	// rebalance, in (0, 1]. 1 jumps straight to the measured rates;
	// smaller values damp noisy signals. Default 1.
	Gain float64
	// RollbackMargin is the relative throughput regression versus the
	// best-seen plan that triggers a rollback. Default 0.10.
	RollbackMargin float64
	// StaleLimit freezes the loop after this many consecutive epochs
	// without a new best plan (it wakes again if the measured imbalance
	// drifts well past where it froze). Default 6.
	StaleLimit int
}

func (o AdapterOptions) withDefaults() AdapterOptions {
	if o.Every <= 0 {
		o.Every = 4
	}
	if o.Hysteresis <= 0 {
		o.Hysteresis = 0.05
	}
	if o.Gain <= 0 || o.Gain > 1 {
		o.Gain = 1
	}
	if o.RollbackMargin <= 0 {
		o.RollbackMargin = 0.10
	}
	if o.StaleLimit <= 0 {
		o.StaleLimit = 6
	}
	return o
}

// AdapterStats snapshot the feedback loop.
type AdapterStats struct {
	// Multiplies counts observed multiplications, Epochs completed
	// evaluation windows.
	Multiplies, Epochs int64
	// Rebalances counts applied Repartition moves, Rollbacks reversions
	// to the best-seen plan after a measured regression.
	Rebalances, Rollbacks int64
	// Imbalance is the last measured max/mean - 1 across core slots.
	Imbalance float64
	// Proportion is the currently installed level-1 P share.
	Proportion float64
	// Converged reports that the last epoch's imbalance was inside the
	// hysteresis band. Frozen reports the staleness cutoff engaged.
	Converged, Frozen bool
}

// Adapter closes the static-model/measured gap at runtime: it ingests
// per-core span durations (the always-on accumulators via AfterMultiply,
// or injected signals via ObserveSpans), estimates each core's effective
// rate from the cost it was assigned versus the time it took, and moves
// the two-level partition toward the measured rates with Repartition —
// cheap boundary moves, never a re-analysis.
//
// Safety over aggression: the best-seen plan (by measured throughput per
// epoch) is kept, a plan that regresses past RollbackMargin is rolled
// back, and imbalance inside the hysteresis band leaves the partition
// untouched, so the loop can never end up below the static plan it
// started from.
type Adapter struct {
	p    *Prepared
	opts AdapterOptions

	mu         sync.Mutex
	sinceCheck int
	epochNs    []int64
	rates      []float64
	weights    []float64 // current level-2 weights, group-mean 1
	prop       float64

	bestScore   float64
	bestProp    float64
	bestWeights []float64
	atBest      bool
	stale       int
	frozen      bool
	frozenImb   float64
	// gain is the live step size. Measured rates shift with the plan
	// (group bandwidth ceilings saturate), so a full-gain move can
	// overshoot the optimum and oscillate between two bad plans; each
	// rollback halves the step (and each new best partially restores it),
	// turning the oscillation into a damped approach.
	gain float64

	stats AdapterStats
}

// NewAdapter attaches a feedback loop to a prepared HASpMV instance.
// The instance's span accumulators are reset so the first epoch measures
// only multiplies observed through this adapter.
func NewAdapter(p *Prepared, opts AdapterOptions) *Adapter {
	n := len(p.Regions())
	a := &Adapter{
		p:           p,
		opts:        opts.withDefaults(),
		epochNs:     make([]int64, n),
		rates:       make([]float64, n),
		weights:     make([]float64, n),
		bestWeights: make([]float64, n),
	}
	pl := p.Plan()
	a.prop = pl.PProportion
	for i := range a.weights {
		a.weights[i] = 1
	}
	if pl.Weights != nil {
		copy(a.weights, pl.Weights)
	}
	a.bestProp = a.prop
	copy(a.bestWeights, a.weights)
	a.atBest = true
	a.gain = a.opts.Gain
	a.stats.Proportion = a.prop
	p.drainSpanNs(a.epochNs)
	for i := range a.epochNs {
		a.epochNs[i] = 0
	}
	return a
}

// Stats snapshots the loop state.
func (a *Adapter) Stats() AdapterStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats
}

// AfterMultiply records one completed Multiply/MultiplyBatch against the
// prepared instance's always-on accumulators; every Every calls it drains
// them and runs one evaluation epoch. Between epochs the cost is a mutex
// and one integer, and no path allocates (the rebalance itself allocates
// only Repartition's fresh regions slice).
func (a *Adapter) AfterMultiply() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.stats.Multiplies++
	a.sinceCheck++
	if a.sinceCheck < a.opts.Every {
		return
	}
	a.p.drainSpanNs(a.epochNs)
	a.evaluate(a.sinceCheck)
	a.sinceCheck = 0
}

// ObserveSpans ingests one multiply's per-core durations in nanoseconds
// (region order) from an external source — a simulator's modeled per-core
// times, or replayed telemetry — instead of the built-in accumulators.
func (a *Adapter) ObserveSpans(ns []int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.stats.Multiplies++
	a.sinceCheck++
	for i := 0; i < len(a.epochNs) && i < len(ns); i++ {
		a.epochNs[i] += ns[i]
	}
	if a.sinceCheck < a.opts.Every {
		return
	}
	a.evaluate(a.sinceCheck)
	for i := range a.epochNs {
		a.epochNs[i] = 0
	}
	a.sinceCheck = 0
}

// evaluate runs one epoch: score the live plan, keep/restore the best,
// and when the measured imbalance exceeds the hysteresis band, move the
// partition toward the measured per-core rates. Called with a.mu held;
// calls counts the multiplies the epoch signal covers.
func (a *Adapter) evaluate(calls int) {
	p := a.p
	regions := p.Regions()
	n := len(regions)
	if n == 0 {
		return
	}
	var maxNs, sumNs int64
	for i := 0; i < n; i++ {
		ns := a.epochNs[i]
		sumNs += ns
		if ns > maxNs {
			maxNs = ns
		}
	}
	if maxNs == 0 {
		return // no signal this epoch
	}
	a.stats.Epochs++
	mean := float64(sumNs) / float64(n)
	imb := float64(maxNs)/mean - 1
	a.stats.Imbalance = imb
	gAdaptImbalance.Set(int64(imb * 1000))

	totalCost := float64(p.cs[p.h.Rows])
	// Score: epoch work over the critical-path time — proportional to
	// GFlop/s for a steady stream of same-shape multiplies.
	score := totalCost * float64(calls) / float64(maxNs)
	switch {
	case a.bestScore == 0:
		// First measured epoch: the incumbent (static) plan is the
		// baseline the loop must never end below.
		a.bestScore = score
		a.bestProp = a.prop
		copy(a.bestWeights, a.weights)
		a.atBest = true
	case score > a.bestScore:
		a.bestScore = score
		a.bestProp = a.prop
		copy(a.bestWeights, a.weights)
		a.atBest = true
		a.stale = 0
		if a.gain < a.opts.Gain {
			a.gain *= 1.5
			if a.gain > a.opts.Gain {
				a.gain = a.opts.Gain
			}
		}
	case !a.atBest && score < a.bestScore*(1-a.opts.RollbackMargin):
		// Measured regression: restore the best-seen plan and halve the
		// step so the retry lands between the two plans instead of
		// re-proposing the one that just failed.
		if err := p.Repartition(Plan{PProportion: a.bestProp, Weights: a.bestWeights}); err == nil {
			a.prop = a.bestProp
			copy(a.weights, a.bestWeights)
			a.atBest = true
			a.stats.Rollbacks++
			cAdaptRollbacks.Add(1)
			a.stats.Proportion = a.prop
		}
		a.gain *= 0.5
		if a.gain < 0.05 {
			a.gain = 0.05
		}
		a.stale++
		if a.stale >= a.opts.StaleLimit {
			a.freeze(imb)
		}
		return
	default:
		a.stale++
	}

	if a.frozen {
		// Wake only when the signal drifts well past where it froze.
		if imb > a.frozenImb*1.5+a.opts.Hysteresis {
			a.frozen = false
			a.stats.Frozen = false
			a.stale = 0
		} else {
			return
		}
	}
	if imb <= a.opts.Hysteresis {
		a.stats.Converged = true
		return
	}
	a.stats.Converged = false
	if a.stale >= a.opts.StaleLimit {
		a.freeze(imb)
		return
	}
	a.rebalance(regions, calls)
}

// freeze stops rebalancing until the imbalance drifts; called with a.mu
// held.
func (a *Adapter) freeze(imb float64) {
	a.frozen = true
	a.frozenImb = imb
	a.stats.Frozen = true
}

// rebalance moves the plan toward the measured per-core rates; called
// with a.mu held.
func (a *Adapter) rebalance(regions []Region, calls int) {
	p := a.p
	// Effective rate of each core slot: assigned cost over measured time.
	// Slots without a signal (starved or empty regions) inherit their
	// group's mean rate so they can earn work back.
	var sumP, sumE float64
	var cntP, cntE int
	for i, reg := range regions {
		cost := p.costAt(reg.Hi) - p.costAt(reg.Lo)
		if cost > 0 && a.epochNs[i] > 0 {
			a.rates[i] = float64(cost) * float64(calls) / float64(a.epochNs[i])
			if a.inPGroup(i) {
				sumP += a.rates[i]
				cntP++
			} else {
				sumE += a.rates[i]
				cntE++
			}
		} else {
			a.rates[i] = 0
		}
	}
	if cntP+cntE == 0 {
		return
	}
	meanAll := (sumP + sumE) / float64(cntP+cntE)
	meanP, meanE := meanAll, meanAll
	if cntP > 0 {
		meanP = sumP / float64(cntP)
	}
	if cntE > 0 {
		meanE = sumE / float64(cntE)
	}
	for i := range a.rates {
		if a.rates[i] == 0 {
			if a.inPGroup(i) {
				a.rates[i] = meanP
				sumP += meanP
			} else {
				a.rates[i] = meanE
				sumE += meanE
			}
		}
	}

	g := a.gain
	prop := a.prop
	if p.grouped() {
		target := sumP / (sumP + sumE)
		prop += g * (target - prop)
		if prop < 0.02 {
			prop = 0.02
		} else if prop > 0.98 {
			prop = 0.98
		}
	}
	// Blend the level-2 weights toward the rates, both normalized to
	// group-mean 1 so the level-1 share stays in PProportion's hands.
	a.normalizeGroups(a.rates)
	for i := range a.weights {
		w := a.weights[i] + g*(a.rates[i]-a.weights[i])
		if w < 0.05 {
			w = 0.05 // never starve a core slot completely
		}
		a.weights[i] = w
	}
	if err := p.Repartition(Plan{PProportion: prop, Weights: a.weights}); err != nil {
		return
	}
	a.prop = prop
	a.atBest = false
	a.stats.Rebalances++
	a.stats.Proportion = prop
	cAdaptRebalances.Add(1)
	gAdaptProportion.Set(int64(prop * 1000))
	if tel := telemetry.Active(); tel != nil {
		// Proportion trajectory in the trace: one partition record per
		// applied rebalance.
		opts := p.opts
		opts.PProportion = prop
		rec := partitionRecord(p.machine, p.mat, p.h, p.cs, opts, p.Regions())
		rec.Algorithm = "HASpMV-rebalance"
		tel.RecordPartition(rec)
	}
}

// inPGroup reports whether core slot i belongs to the level-1 P budget.
func (a *Adapter) inPGroup(i int) bool {
	return a.p.grouped() && i < a.p.pCount
}

// normalizeGroups scales xs to mean 1 within the P slots and within the
// E slots (or across all slots when ungrouped).
func (a *Adapter) normalizeGroups(xs []float64) {
	p := a.p
	n := len(xs)
	norm := func(lo, hi int) {
		sum := 0.0
		for i := lo; i < hi; i++ {
			sum += xs[i]
		}
		if sum <= 0 {
			for i := lo; i < hi; i++ {
				xs[i] = 1
			}
			return
		}
		mean := sum / float64(hi-lo)
		for i := lo; i < hi; i++ {
			xs[i] /= mean
		}
	}
	if p.grouped() {
		norm(0, p.pCount)
		norm(p.pCount, n)
	} else {
		norm(0, n)
	}
}
