package core

import (
	"math"
	"testing"

	"haspmv/internal/amp"
	"haspmv/internal/sparse"
)

// narrowMatrix has every row span well under the u16 limit.
func narrowMatrix(rows int) *sparse.CSR {
	c := &sparse.COO{Rows: rows, Cols: 64}
	for i := 0; i < rows; i++ {
		for j := 0; j < 3+i%5; j++ {
			c.Add(i, (i+7*j)%64, 1+float64(i+j)/8)
		}
	}
	return c.ToCSR()
}

func preparedWith(t *testing.T, a *sparse.CSR, mode IndexMode) *Prepared {
	t.Helper()
	prep, err := New(Options{Index: mode}).Prepare(amp.IntelI912900KF(), a)
	if err != nil {
		t.Fatal(err)
	}
	return prep.(*Prepared)
}

func TestIndexStatsPerMode(t *testing.T) {
	a := narrowMatrix(400)
	nnz := a.NNZ()

	auto := preparedWith(t, a, IndexAuto).IndexStats()
	if auto.NNZByFormat[Index16] != nnz {
		t.Errorf("auto on all-narrow rows: u16 nnz = %d, want all %d (split %v)",
			auto.NNZByFormat[Index16], nnz, auto.NNZByFormat)
	}
	if auto.StreamIndexBytes != 2*nnz {
		t.Errorf("auto stream bytes = %d, want %d", auto.StreamIndexBytes, 2*nnz)
	}
	if auto.Eligible16NNZ != nnz {
		t.Errorf("auto eligible nnz = %d, want %d", auto.Eligible16NNZ, nnz)
	}

	u32 := preparedWith(t, a, IndexU32).IndexStats()
	if u32.NNZByFormat[Index32] != nnz || u32.StreamIndexBytes != 4*nnz {
		t.Errorf("u32 stats = %+v, want all %d nnz at 4 bytes", u32, nnz)
	}

	ref := preparedWith(t, a, IndexReference).IndexStats()
	if ref.NNZByFormat[IndexInt] != nnz || ref.StreamIndexBytes != 8*nnz {
		t.Errorf("reference stats = %+v, want all %d nnz at 8 bytes", ref, nnz)
	}
	if ref.Eligible16NNZ != 0 {
		t.Errorf("reference mode computed delta analysis: %+v", ref)
	}
}

// A hub row spanning past 2^16 columns must push the regions that touch
// it off the delta stream — to u32, or to the diagonal format whose
// per-row fallback walks the hub through u32 indices — while the narrow
// rows keep the delta stream, and the mixed dispatch must still
// reproduce the reference multiply.
func TestRegionFormatFallbackOnWideRow(t *testing.T) {
	const cols = 70000
	c := &sparse.COO{Rows: 200, Cols: cols}
	for i := 0; i < 200; i++ {
		for j := 0; j < 4; j++ {
			c.Add(i, (i*3+j)%100, 1+float64(i%9))
		}
	}
	for j := 0; j < cols; j += 500 { // row 100 spans the full width
		c.Add(100, j, 0.5)
	}
	a := c.ToCSR()
	nnz := a.NNZ()
	hubLen := a.RowPtr[101] - a.RowPtr[100] // after duplicate merging

	p := preparedWith(t, a, IndexAuto)
	st := p.IndexStats()
	if want := cols - 1 - 500 + 500; st.MaxRowSpan < maxSpan16+1 {
		t.Errorf("max row span = %d, want > %d (hub spans ~%d)", st.MaxRowSpan, maxSpan16, want)
	}
	if st.Eligible16NNZ != nnz-hubLen {
		t.Errorf("eligible nnz = %d, want %d (all but the hub row)", st.Eligible16NNZ, nnz-hubLen)
	}
	if st.NNZByFormat[IndexInt] != 0 {
		t.Errorf("auto left %d nnz on the []int path", st.NNZByFormat[IndexInt])
	}
	if wide := st.NNZByFormat[Index32] + st.NNZByFormat[IndexDia]; wide < hubLen {
		t.Errorf("u32+dia nnz = %d, want at least the hub row's %d (split %v)",
			wide, hubLen, st.NNZByFormat)
	}
	if st.NNZByFormat[Index16] == 0 {
		t.Error("no region kept the u16 stream despite 200 narrow rows")
	}
	if st.NNZByFormat[0]+st.NNZByFormat[1]+st.NNZByFormat[2]+st.NNZByFormat[3] != nnz {
		t.Errorf("format split %v does not cover %d nnz", st.NNZByFormat, nnz)
	}

	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = 1 + float64(i%11)/8
	}
	y := make([]float64, a.Rows)
	p.Compute(y, x)
	ref := make([]float64, a.Rows)
	preparedWith(t, a, IndexReference).Compute(ref, x)
	for i := range y {
		if math.Float64bits(y[i]) != math.Float64bits(ref[i]) {
			t.Fatalf("mixed-format y[%d] = %x, reference %x", i, y[i], ref[i])
		}
	}
}

// Repartition must re-pick formats without rebuilding streams: pushing
// every boundary around still covers all nonzeros with valid formats
// and stays bit-identical to a reference instance repartitioned the
// same way.
func TestRepartitionReassignsFormats(t *testing.T) {
	a := narrowMatrix(300)
	p := preparedWith(t, a, IndexAuto)
	ref := preparedWith(t, a, IndexReference)
	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = float64(i%13) - 6
	}
	y := make([]float64, a.Rows)
	want := make([]float64, a.Rows)
	for _, prop := range []float64{0.2, 0.9, 0.55} {
		if err := p.Repartition(Plan{PProportion: prop}); err != nil {
			t.Fatal(err)
		}
		if err := ref.Repartition(Plan{PProportion: prop}); err != nil {
			t.Fatal(err)
		}
		st := p.IndexStats()
		if got := st.NNZByFormat[0] + st.NNZByFormat[1] + st.NNZByFormat[2] + st.NNZByFormat[3]; got != a.NNZ() {
			t.Fatalf("prop %v: format split %v covers %d of %d nnz", prop, st.NNZByFormat, got, a.NNZ())
		}
		p.Compute(y, x)
		ref.Compute(want, x)
		for i := range y {
			if math.Float64bits(y[i]) != math.Float64bits(want[i]) {
				t.Fatalf("prop %v: y[%d] = %x, reference %x", prop, i, y[i], want[i])
			}
		}
	}
}
