//go:build race

package core

// raceEnabled reports that the race detector is instrumenting this
// build. Timing-sensitive tests (the reorder speedup gates) read it to
// skip wall-clock assertions that the ~10x instrumentation slowdown
// would turn into noise.
const raceEnabled = true
