package core

import (
	"fmt"
	"math"
	"time"

	"haspmv/internal/costmodel"
	"haspmv/internal/exec"
	"haspmv/internal/kernel"
	"haspmv/internal/telemetry"
)

// Speculative segmented-sum execution (Liu & Vinter, arXiv:1504.06474,
// grafted onto the HACSR partition). The classic HASpMV Compute has two
// scalability hazards on power-law matrices: the serial extraY epilogue
// grows with every row cut across cores — one mega-row split over many
// cores serializes its merge no matter how well nnz is balanced — and
// the per-row fragment walk pays a kernel call plus four metadata loads
// per row, which dominates when the typical row holds a handful of
// nonzeros. Segmented execution removes both: each core runs its whole
// interior rows from a flat 12-byte descriptor stream (the row loop
// lives inside kernel.SegSum*), and rows cut across cores are resolved
// by a *parallel patch* — the last core of a cut-row group to finish
// adds the group's fragments into the destination row, coordinated by
// one atomic counter per group, so no serial section remains.
//
// Everything here is bit-exact with the serial-epilogue path: the
// segmented kernels reuse DotRange's dispatch thresholds and
// accumulator chains, and the patch adds a group's fragments in the
// same ascending-region order the serial epilogue would have used, so
// the float64 sums associate identically. The fuzz bit-equality stage
// pins the two modes against each other (including after Repartition).

// ExecMode selects how Compute/ComputeBatch resolve rows cut across
// cores. The zero value is the dispatching default.
type ExecMode int

const (
	// ExecAuto picks per region: segmented when the matrix-level row
	// skew predicts the epilogue or the per-row walk overhead dominates
	// (costmodel.RowSkew.PreferSegSum), serial otherwise.
	ExecAuto ExecMode = iota
	// ExecSerial forces the classic per-fragment walk with the serial
	// extraY epilogue everywhere — the oracle the fuzz stage compares
	// against.
	ExecSerial
	// ExecSegSum forces segmented-sum execution on every region (cut-row
	// groups are always parallel-patched; the epilogue has nothing to
	// do).
	ExecSegSum
)

func (m ExecMode) String() string {
	switch m {
	case ExecAuto:
		return "auto"
	case ExecSerial:
		return "serial"
	case ExecSegSum:
		return "segsum"
	default:
		return fmt.Sprintf("ExecMode(%d)", int(m))
	}
}

// gNNZSegSum tracks the nonzeros assigned to segmented execution in the
// live partition, next to the per-format gauges.
var gNNZSegSum = telemetry.NewGauge("core_partition_nnz_segsum")

// autoSegSumMeanRow is the region mean-row-length ceiling under which
// ExecAuto prefers the descriptor walk: at a few nonzeros per row the
// fragment walk's per-row overhead is comparable to the dot product
// itself, which is exactly what the segmented kernels amortize away.
const autoSegSumMeanRow = 32

// buildSegments materializes the per-row descriptor stream when the
// selected mode can use it. Descriptors are global (one per reordered
// row, in original-nnz space), so Repartition never rebuilds them — a
// boundary move only changes which rows are interior vs cut, which
// assignModes re-derives. The int32 fields gate segmented execution to
// matrices under 2^31 nonzeros and rows.
func (p *Prepared) buildSegments() {
	if p.opts.Exec == ExecSerial {
		return
	}
	// The segmented interior kernels stream the matrix's own []float64
	// (bit-identical under a palette — the table entry is the stored
	// float64 — but not under the rounded f32 stream), so an f32 instance
	// stays on the fragment walk everywhere.
	if p.values.format == ValF32 {
		return
	}
	h := p.h
	if h.NNZ() > math.MaxInt32 || h.Rows > math.MaxInt32 {
		return
	}
	if p.opts.Exec == ExecAuto && !p.skew.PreferSegSum(len(p.cores)) {
		return
	}
	segs := make([]kernel.Segment, h.Rows)
	exec.ParallelRanges(h.Rows, prepWidth(), prepGrain, func(_, lo, hi int) {
		for r := lo; r < hi; r++ {
			o := h.RowBeginNNZ[r]
			segs[r] = kernel.Segment{K0: int32(o), K1: int32(o + h.RowLen(r)), Dst: int32(h.Perm[r])}
		}
	})
	p.segs = segs
}

// assignModes stamps every region's execution mode and cut-row group
// bookkeeping. Like assignFormats it runs at Prepare and after every
// Repartition, before the regions slice is published, so a boundary
// move re-picks the mode exactly the way it re-picks the index format.
//
// A cut-row *group* is the head region (the one owning the cut row's
// first fragment) plus every region whose leading fragment continues
// that row. The group is parallel-patched iff all its non-empty members
// run segmented; otherwise its continuations fall back to the extraY
// slots and the serial epilogue resolves them as before (mixed groups
// under ExecAuto stay correct either way, just not patched).
func (p *Prepared) assignModes(regions []Region) {
	h := p.h
	for i := range regions {
		r := &regions[i]
		r.SegSum = false
		r.ContFirst, r.HeadLast, r.HeadSpan = -1, -1, 0
		r.PatchCont, r.PatchHead = false, false
		if r.Lo < r.Hi {
			r.EndRow = rowOfPosition(h, r.Hi-1)
		} else {
			r.EndRow = r.StartRow
		}
	}
	if p.segs == nil {
		gNNZSegSum.Set(0)
		return
	}
	n := len(regions)
	// Group scan: for every head whose last row is cut, chain the
	// continuation regions and count the non-empty members (the patch
	// rendezvous count; empty members never signal).
	for i := 0; i < n; i++ {
		ri := &regions[i]
		if ri.Lo >= ri.Hi {
			continue
		}
		rowEnd := h.RowPtr[ri.EndRow+1]
		if ri.Hi >= rowEnd || ri.Lo > h.RowPtr[ri.EndRow] {
			continue // last row not cut, or this region is itself a continuation
		}
		span, last := 1, i
		for j := i + 1; j < n && regions[j].Lo < rowEnd; j++ {
			last = j
			if regions[j].Lo < regions[j].Hi {
				regions[j].ContFirst = i
				span++
				if regions[j].Hi >= rowEnd {
					break
				}
			}
		}
		ri.HeadLast, ri.HeadSpan = last, span
	}
	// Mode per region: forced, or the auto predicate — short typical
	// rows (the descriptor walk amortizes the per-row overhead) or
	// cut-row group membership (the parallel patch removes the serial
	// merge).
	for i := range regions {
		r := &regions[i]
		if p.opts.Exec == ExecSegSum {
			r.SegSum = true
			continue
		}
		if r.Lo >= r.Hi {
			continue
		}
		mean := float64(r.Hi-r.Lo) / float64(r.EndRow-r.StartRow+1)
		r.SegSum = mean <= autoSegSumMeanRow || r.ContFirst >= 0 || r.HeadLast >= 0
	}
	// Patch flags: a group rendezvouses in parallel only when every
	// non-empty member runs segmented.
	var segNNZ int64
	for i := range regions {
		ri := &regions[i]
		if ri.SegSum {
			segNNZ += int64(ri.Hi - ri.Lo)
		}
		if ri.HeadLast < 0 {
			continue
		}
		all := true
		for j := i; j <= ri.HeadLast; j++ {
			if regions[j].Lo < regions[j].Hi && !regions[j].SegSum {
				all = false
				break
			}
		}
		if !all {
			continue
		}
		ri.PatchHead = true
		for j := i + 1; j <= ri.HeadLast; j++ {
			if regions[j].Lo < regions[j].Hi && regions[j].ContFirst == i {
				regions[j].PatchCont = true
			}
		}
	}
	gNNZSegSum.Set(segNNZ)
}

// RowSkew returns the row-length skew statistics Prepare computed for
// the execution-mode dispatch.
func (p *Prepared) RowSkew() costmodel.RowSkew { return p.skew }

// SegSumNNZ returns the nonzeros assigned to segmented-sum execution in
// the live partition (0 while the mode is off everywhere).
func (p *Prepared) SegSumNNZ() int64 {
	var n int64
	for _, r := range *p.regions.Load() {
		if r.SegSum {
			n += int64(r.Hi - r.Lo)
		}
	}
	return n
}

// runSegSum is one core's share of a Compute call in segmented mode:
// an optional leading continuation fragment, the interior whole rows
// from the descriptor stream, an optional direct-stored trailing
// fragment of a cut row this region heads, then the group patch
// signals. The caller has already reset extraRow/durNs and rejected
// empty regions.
func (s *computeScratch) runSegSum(id int, reg Region) {
	p := s.p
	tel := s.tel
	t0 := time.Now()
	h, mat, y, x := p.h, p.mat, s.y, s.x
	st := &p.streams
	un := p.unroll[id]
	frags := 0
	r0, r1 := reg.StartRow, reg.EndRow
	// Leading continuation: the region starts mid-row, so its partial
	// sum is a fragment — patched in parallel when the whole group is
	// segmented, merged by the serial epilogue otherwise.
	if reg.Lo > h.RowPtr[r0] {
		rowStart := h.RowPtr[r0]
		fragEnd := h.RowPtr[r0+1]
		if fragEnd > reg.Hi {
			fragEnd = reg.Hi
		}
		o := h.RowBeginNNZ[r0]
		klo, khi := o+(reg.Lo-rowStart), o+(fragEnd-rowStart)
		s.extraVal[id] = p.dotFragment(reg.Format, reg.Val, r0, klo, khi, un, x)
		if !reg.PatchCont {
			s.extraRow[id] = h.Perm[r0]
		}
		frags++
		r0++
	}
	// Trailing fragment exists when the region's last row continues
	// into the next region (and was not already consumed as the leading
	// fragment above).
	tailClip := r0 <= r1 && reg.Hi < h.RowPtr[r1+1]
	rLast := r1
	if tailClip {
		rLast = r1 - 1
	}
	if r0 <= rLast {
		// Interior rows always stream the f64 values (bit-identical under
		// a palette; f32 instances never reach segmented mode). A diagonal
		// region's interior runs on the u32 stream — descriptors amortize
		// over long rows, segmented regions are short-row by selection.
		segs := p.segs[r0 : rLast+1]
		switch reg.Format {
		case Index32, IndexDia:
			frags += kernel.SegSum32(mat.Val, st.col32, x, y, segs, un)
		case Index16:
			frags += kernel.SegSum16Delta(mat.Val, st.col16, st.rowBase[r0:rLast+1], x, y, segs, un)
		default:
			frags += kernel.SegSum(mat.Val, mat.ColIdx, x, y, segs, un)
		}
	}
	if tailClip {
		o := h.RowBeginNNZ[r1]
		khi := o + (reg.Hi - h.RowPtr[r1])
		// This region owns the cut row's first fragment: direct store,
		// exactly like the serial walk's pos==rowStart arm. The patch
		// (or the epilogue) adds the continuations on top.
		y[h.Perm[r1]] = p.dotFragment(reg.Format, reg.Val, r1, o, khi, un, x)
		frags++
	}
	if reg.PatchCont {
		s.patch(reg.ContFirst)
	}
	if reg.PatchHead {
		s.patch(id)
	}
	nnzDone := reg.Hi - reg.Lo
	dur := time.Since(t0)
	p.accum[id].ns.Add(int64(dur))
	p.accum[id].nnz.Add(int64(nnzDone))
	s.durNs[id] = int64(dur)
	cNNZFormat[reg.Format].Add(int64(nnzDone))
	cNNZValue[reg.Val].Add(int64(nnzDone))
	if tel != nil {
		extra := 0
		if reg.PatchCont || s.extraRow[id] >= 0 {
			extra = 1
		}
		tel.RecordSpan(telemetry.Span{
			Name: "core", Core: reg.Core,
			Start: t0.Sub(tel.Start()), Dur: dur,
			NNZ: nnzDone, Fragments: frags, ExtraY: extra,
		})
	}
}

// patch is the parallel cut-row rendezvous for group g (the head
// region's slot). Every non-empty member signals once after its writes;
// the member whose signal completes the group adds all continuation
// fragments into the destination row in ascending region order — the
// same left-associated chain the serial epilogue would have produced —
// then resets the counter for the next call on this pooled scratch.
// The atomic counter's RMW chain orders every member's plain writes
// before the patcher's reads.
func (s *computeScratch) patch(g int) {
	regs := s.regs
	if int(s.pending[g].Add(1)) != regs[g].HeadSpan {
		return
	}
	s.pending[g].Store(0)
	dst := s.p.h.Perm[regs[g].EndRow]
	v := s.y[dst]
	for id := g + 1; id <= regs[g].HeadLast; id++ {
		if regs[id].Lo < regs[id].Hi {
			v += s.extraVal[id]
		}
	}
	s.y[dst] = v
}

// runSegSum is the batch analogue: the same fragment skeleton with
// every piece widened to the register-blocked kernels, tiled MaxBlock
// vectors at a time (a width-1 tile takes the single-vector path, as
// ComputeBatch's fragment walk does).
func (s *batchScratch) runSegSum(id int, reg Region) {
	p := s.p
	tel := s.tel
	t0 := time.Now()
	h, mat, Y, X, nv := p.h, p.mat, s.Y, s.X, s.nv
	st := &p.streams
	un := p.unroll[id]
	extra := s.extraVal[id*s.nvCap : id*s.nvCap+nv]
	sums := s.sums[id*kernel.MaxBlock : (id+1)*kernel.MaxBlock]
	frags := 0
	r0, r1 := reg.StartRow, reg.EndRow
	if reg.Lo > h.RowPtr[r0] {
		rowStart := h.RowPtr[r0]
		fragEnd := h.RowPtr[r0+1]
		if fragEnd > reg.Hi {
			fragEnd = reg.Hi
		}
		o := h.RowBeginNNZ[r0]
		klo, khi := o+(reg.Lo-rowStart), o+(fragEnd-rowStart)
		for v0 := 0; v0 < nv; {
			w := nv - v0
			if w > kernel.MaxBlock {
				w = kernel.MaxBlock
			}
			if w == 1 {
				sums[0] = p.dotFragment(reg.Format, reg.Val, r0, klo, khi, un, X[v0])
			} else {
				p.dotFragmentBlock(reg.Format, reg.Val, r0, klo, khi, un, X[v0:], sums[:w])
			}
			copy(extra[v0:v0+w], sums[:w])
			v0 += w
		}
		if !reg.PatchCont {
			s.extraRow[id] = h.Perm[r0]
		}
		frags++
		r0++
	}
	tailClip := r0 <= r1 && reg.Hi < h.RowPtr[r1+1]
	rLast := r1
	if tailClip {
		rLast = r1 - 1
	}
	if r0 <= rLast {
		segs := p.segs[r0 : rLast+1]
		for v0 := 0; v0 < nv; {
			w := nv - v0
			if w > kernel.MaxBlock {
				w = kernel.MaxBlock
			}
			var done int
			switch reg.Format {
			case Index32, IndexDia:
				done = kernel.SegSumBlock32(mat.Val, st.col32, X[v0:], Y[v0:], sums[:w], segs, un)
			case Index16:
				done = kernel.SegSumBlock16Delta(mat.Val, st.col16, st.rowBase[r0:rLast+1], X[v0:], Y[v0:], sums[:w], segs, un)
			default:
				done = kernel.SegSumBlock(mat.Val, mat.ColIdx, X[v0:], Y[v0:], sums[:w], segs, un)
			}
			if v0 == 0 {
				frags += done
			}
			v0 += w
		}
	}
	if tailClip {
		o := h.RowBeginNNZ[r1]
		khi := o + (reg.Hi - h.RowPtr[r1])
		orig := h.Perm[r1]
		for v0 := 0; v0 < nv; {
			w := nv - v0
			if w > kernel.MaxBlock {
				w = kernel.MaxBlock
			}
			if w == 1 {
				sums[0] = p.dotFragment(reg.Format, reg.Val, r1, o, khi, un, X[v0])
			} else {
				p.dotFragmentBlock(reg.Format, reg.Val, r1, o, khi, un, X[v0:], sums[:w])
			}
			for j := 0; j < w; j++ {
				Y[v0+j][orig] = sums[j]
			}
			v0 += w
		}
		frags++
	}
	if reg.PatchCont {
		s.patch(reg.ContFirst)
	}
	if reg.PatchHead {
		s.patch(id)
	}
	nnzDone := reg.Hi - reg.Lo
	dur := time.Since(t0)
	p.accum[id].ns.Add(int64(dur))
	p.accum[id].nnz.Add(int64(nnzDone))
	s.durNs[id] = int64(dur)
	cNNZFormat[reg.Format].Add(int64(nnzDone))
	cNNZValue[reg.Val].Add(int64(nnzDone))
	if tel != nil {
		ex := 0
		if reg.PatchCont || s.extraRow[id] >= 0 {
			ex = 1
		}
		tel.RecordSpan(telemetry.Span{
			Name: "batch-core", Core: reg.Core,
			Start: t0.Sub(tel.Start()), Dur: dur,
			NNZ: nnzDone, Fragments: frags, ExtraY: ex,
		})
	}
}

// patch is the batch-call group rendezvous: per vector, the same
// ascending-region chain as the batched serial epilogue's per-element
// order, so Y[v] carries identical bits either way.
func (s *batchScratch) patch(g int) {
	regs := s.regs
	if int(s.pending[g].Add(1)) != regs[g].HeadSpan {
		return
	}
	s.pending[g].Store(0)
	dst := s.p.h.Perm[regs[g].EndRow]
	nv, nvCap := s.nv, s.nvCap
	for v := 0; v < nv; v++ {
		val := s.Y[v][dst]
		for id := g + 1; id <= regs[g].HeadLast; id++ {
			if regs[id].Lo < regs[id].Hi {
				val += s.extraVal[id*nvCap+v]
			}
		}
		s.Y[v][dst] = val
	}
}
