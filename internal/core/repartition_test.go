package core

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"haspmv/internal/amp"
	"haspmv/internal/exec"
	"haspmv/internal/gen"
	"haspmv/internal/sparse"
)

// gappyMatrix builds a matrix whose populated rows are separated by runs
// of empty rows — the structure that stresses StartRow recomputation and
// the row-granular cost prefix after a repartition.
func gappyMatrix(t testing.TB) *sparse.CSR {
	t.Helper()
	c := &sparse.COO{Rows: 64, Cols: 48}
	for i := 0; i < 64; i += 5 { // rows 0, 5, 10, ... populated; the rest empty
		for k := 0; k < 1+i%7; k++ {
			c.Add(i, (i*3+k*11)%48, float64(k+1)/3)
		}
	}
	return c.ToCSR()
}

// checkLive asserts the live partition still satisfies every structural
// invariant and that Compute against it matches the naive reference.
func checkLive(t *testing.T, a *sparse.CSR, hp *Prepared) {
	t.Helper()
	if err := checkRegions(hp.h, hp.Regions()); err != nil {
		t.Fatalf("checkRegions after repartition: %v", err)
	}
	if err := exec.CheckAssignments(a, hp.Assignments()); err != nil {
		t.Fatalf("assignment coverage after repartition: %v", err)
	}
	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = 1 + float64(i%5)/4
	}
	y := make([]float64, a.Rows)
	hp.Compute(y, x)
	want := make([]float64, a.Rows)
	a.MulVec(want, x)
	for i := range y {
		if diff := math.Abs(y[i] - want[i]); diff > 1e-9*(1+math.Abs(want[i])) {
			t.Fatalf("y[%d] = %v, reference %v", i, y[i], want[i])
		}
	}
}

// TestRepartitionPropertyRandomPlans is the satellite property test: for
// random proportions and random per-core weights, over matrices including
// one dominated by empty rows and over the option ablations, Repartition
// must always succeed, always produce a partition that passes
// checkRegions, and never change the computed product.
func TestRepartitionPropertyRandomPlans(t *testing.T) {
	m := amp.IntelI912900KF()
	mats := map[string]*sparse.CSR{
		"rma10":      gen.Representative("rma10", 64),
		"webbase":    gen.Representative("webbase-1M", 512),
		"empty-rows": gappyMatrix(t),
	}
	optsList := []Options{{}, {OneLevel: true}, {DisableReorder: true}}
	r := rand.New(rand.NewSource(42))
	for name, a := range mats {
		for _, opts := range optsList {
			prep, err := New(opts).Prepare(m, a)
			if err != nil {
				t.Fatalf("%s: Prepare: %v", name, err)
			}
			hp := prep.(*Prepared)
			n := len(hp.Regions())
			for trial := 0; trial < 20; trial++ {
				plan := Plan{PProportion: 0.02 + 0.96*r.Float64()}
				if trial%2 == 1 {
					plan.Weights = make([]float64, n)
					for i := range plan.Weights {
						plan.Weights[i] = 0.1 + 4*r.Float64()
					}
				}
				if err := hp.Repartition(plan); err != nil {
					t.Fatalf("%s opts %+v trial %d: Repartition(%+v): %v",
						name, opts, trial, plan, err)
				}
				checkLive(t, a, hp)
			}
		}
	}
}

// TestRepartitionRejectsBadPlans: invalid plans must fail loudly and
// leave the live partition (and the repartition counter) untouched.
func TestRepartitionRejectsBadPlans(t *testing.T) {
	m := amp.IntelI912900KF()
	a := gen.Representative("rma10", 64)
	prep, err := New(Options{}).Prepare(m, a)
	if err != nil {
		t.Fatal(err)
	}
	hp := prep.(*Prepared)
	if !hp.grouped() {
		t.Fatal("expected a two-group instance on i9-12900KF")
	}
	n := len(hp.Regions())

	bad := []Plan{
		{PProportion: 0},    // outside (0,1)
		{PProportion: 1},    //
		{PProportion: -0.2}, //
		{PProportion: 1.5},  //
		{PProportion: 0.5, Weights: make([]float64, n+1)},    // wrong length
		{PProportion: 0.5, Weights: make([]float64, n)},      // all-zero weights
		{PProportion: 0.5, Weights: negAt(n, 0)},             // negative weight
		{PProportion: 0.5, Weights: zeroGroup(n, hp.pCount)}, // P-group sums to 0
		{PProportion: 0.5, Weights: zeroTail(n, hp.pCount)},  // E-group sums to 0
	}
	before := hp.Regions()
	reps := hp.Repartitions()
	for i, plan := range bad {
		if err := hp.Repartition(plan); err == nil {
			t.Fatalf("bad plan %d (%+v): expected an error", i, plan)
		}
		after := hp.Regions()
		if len(after) != len(before) {
			t.Fatalf("bad plan %d changed the region count", i)
		}
		for j := range after {
			if after[j] != before[j] {
				t.Fatalf("bad plan %d moved region %d: %+v -> %+v", i, j, before[j], after[j])
			}
		}
	}
	if got := hp.Repartitions(); got != reps {
		t.Fatalf("failed repartitions bumped the counter: %d -> %d", reps, got)
	}
	// A valid plan still works after the failures.
	if err := hp.Repartition(Plan{PProportion: 0.6}); err != nil {
		t.Fatalf("valid plan after failures: %v", err)
	}
	checkLive(t, a, hp)
}

func negAt(n, i int) []float64 {
	w := make([]float64, n)
	for j := range w {
		w[j] = 1
	}
	w[i] = -1
	return w
}

func zeroGroup(n, pCount int) []float64 {
	w := make([]float64, n)
	for j := pCount; j < n; j++ {
		w[j] = 1
	}
	return w
}

func zeroTail(n, pCount int) []float64 {
	w := make([]float64, n)
	for j := 0; j < pCount; j++ {
		w[j] = 1
	}
	return w
}

// TestRepartitionOneLevelIgnoresProportion: on an ungrouped instance the
// level-1 share is meaningless, so any proportion — including ones a
// grouped instance would reject — must be accepted.
func TestRepartitionOneLevelIgnoresProportion(t *testing.T) {
	m := amp.IntelI912900KF()
	a := gen.Representative("rma10", 64)
	prep, err := New(Options{OneLevel: true}).Prepare(m, a)
	if err != nil {
		t.Fatal(err)
	}
	hp := prep.(*Prepared)
	for _, prop := range []float64{0, -3, 1, 7} {
		if err := hp.Repartition(Plan{PProportion: prop}); err != nil {
			t.Fatalf("OneLevel Repartition(prop=%v): %v", prop, err)
		}
	}
	checkLive(t, a, hp)
}

// TestRepartitionConcurrentWithCompute hammers boundary moves under
// concurrent multiplies: every Compute must see one consistent snapshot
// (this is the race-detector coverage for the atomic swap discipline).
func TestRepartitionConcurrentWithCompute(t *testing.T) {
	m := amp.IntelI912900KF()
	a := gen.Representative("rma10", 64)
	prep, err := New(Options{}).Prepare(m, a)
	if err != nil {
		t.Fatal(err)
	}
	hp := prep.(*Prepared)

	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = 1 + float64(i%7)/7
	}
	want := make([]float64, a.Rows)
	a.MulVec(want, x)

	const workers, iters = 4, 40
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			y := make([]float64, a.Rows)
			for it := 0; it < iters; it++ {
				hp.Compute(y, x)
				for i := range y {
					if diff := math.Abs(y[i] - want[i]); diff > 1e-9*(1+math.Abs(want[i])) {
						errs <- fmt.Errorf("concurrent Compute: y[%d] = %v, reference %v", i, y[i], want[i])
						return
					}
				}
			}
		}()
	}
	props := []float64{0.3, 0.5, 0.7, 0.9}
	for it := 0; it < 200; it++ {
		if err := hp.Repartition(Plan{PProportion: props[it%len(props)]}); err != nil {
			t.Fatalf("Repartition under load: %v", err)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
