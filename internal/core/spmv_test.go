package core

import (
	"math"
	"testing"

	"haspmv/internal/sparse"

	"haspmv/internal/algtest"
	"haspmv/internal/amp"
	"haspmv/internal/costmodel"
	"haspmv/internal/gen"
)

func TestCorrectnessAllMachinesAndOptions(t *testing.T) {
	for _, m := range amp.AllWithExtensions() {
		for _, opts := range []Options{
			{},                     // paper defaults
			{Metric: NNZCost},      // Fig 9 "by nnz"
			{Metric: RowCost},      // Fig 9 "by row"
			{DisableReorder: true}, // reorder ablation
			{OneLevel: true},       // heterogeneity ablation
			{Config: amp.POnly},    // single group
			{Config: amp.EOnly},    //
			{PProportion: 0.9},     // extreme split
			{PProportion: 0.1},     //
			{Base: 2},              // aggressive reorder
			{Base: 1 << 30},        // nothing is long
		} {
			alg := New(opts)
			t.Run(m.Name+"/"+alg.Name(), func(t *testing.T) {
				algtest.CheckAlgorithm(t, alg, m)
			})
		}
	}
}

func TestPropertyRandomMatrices(t *testing.T) {
	m := amp.IntelI913900KF()
	algtest.CheckProperty(t, New(Options{}), m, 20)
	algtest.CheckProperty(t, New(Options{Metric: NNZCost}), m, 10)
	algtest.CheckProperty(t, New(Options{DisableReorder: true, Metric: RowCost}), m, 10)
}

func TestDefaultProportion(t *testing.T) {
	cases := []struct {
		m      *amp.Machine
		lo, hi float64
	}{
		{amp.IntelI912900KF(), 0.6, 0.85},
		{amp.IntelI913900KF(), 0.55, 0.75},
		{amp.AMDRyzen97950X3D(), 0.499, 0.501},
		{amp.AMDRyzen97950X(), 0.499, 0.501},
	}
	for _, tc := range cases {
		p := DefaultProportion(tc.m)
		if p < tc.lo || p > tc.hi {
			t.Errorf("%s: proportion %.3f outside [%.2f, %.2f]", tc.m.Name, p, tc.lo, tc.hi)
		}
	}
}

func TestAutoBase(t *testing.T) {
	short := gen.Spec{Name: "s", Rows: 100, Cols: 100, Dist: gen.ConstLen{L: 3},
		Place: gen.Random, Seed: 1}.Generate()
	if got := AutoBase(short); got != 64 {
		t.Fatalf("short-row base %d, want floor 64", got)
	}
	long := gen.Spec{Name: "l", Rows: 100, Cols: 1000, Dist: gen.ConstLen{L: 50},
		Place: gen.Random, Seed: 1}.Generate()
	if got := AutoBase(long); got != 200 {
		t.Fatalf("long-row base %d, want 200", got)
	}
	if AutoBase(algtest.Matrix("empty-0x0")) != 64 {
		t.Fatal("empty base")
	}
}

// The level-1 split must hand the P-group its configured share of the
// cost, and the level-2 split must balance within each group (the Fig. 9
// flat-bars property).
func TestTwoLevelPartitionShares(t *testing.T) {
	m := amp.IntelI912900KF()
	a := gen.Spec{Name: "p", Rows: 40000, Cols: 40000, TargetNNZ: 800000,
		Dist: gen.NormalLen{Mean: 20, Std: 6, Min: 1, Max: 60}, Place: gen.Clustered, Seed: 8}.Generate()
	prop := 0.7
	prep, err := New(Options{PProportion: prop, Metric: NNZCost}).Prepare(m, a)
	if err != nil {
		t.Fatal(err)
	}
	p := prep.(*Prepared)
	var pShare, eShare int
	var pMax, pMin, eMax, eMin = 0, math.MaxInt, 0, math.MaxInt
	for _, reg := range p.Regions() {
		n := reg.Hi - reg.Lo
		g, _ := m.GroupOf(reg.Core)
		if g.Kind == amp.Performance {
			pShare += n
			pMax, pMin = maxi(pMax, n), mini(pMin, n)
		} else {
			eShare += n
			eMax, eMin = maxi(eMax, n), mini(eMin, n)
		}
	}
	gotProp := float64(pShare) / float64(pShare+eShare)
	if math.Abs(gotProp-prop) > 0.01 {
		t.Fatalf("P share %.3f, want %.2f", gotProp, prop)
	}
	// Within-group balance: nnz metric cuts exactly, so slack is tiny.
	if pMax-pMin > 2 || eMax-eMin > 2 {
		t.Fatalf("within-group imbalance: P [%d,%d], E [%d,%d]", pMin, pMax, eMin, eMax)
	}
}

// Cache-line partitioning balances the *cost*, not the nnz: on a matrix
// mixing dense-line rows (many nnz per line) with scattered rows (one nnz
// per line), per-core cache-line cost must be nearly equal even though
// per-core nnz differs widely.
func TestCacheLineBalancesCostNotNNZ(t *testing.T) {
	m := amp.AMDRyzen97950X() // homogeneous: level-1 split is 50/50
	// First half: banded rows of 32 nnz covering ~5 lines each.
	// Second half: scattered rows of 8 nnz covering 8 lines each.
	rows := 8000
	dense := gen.Spec{Name: "d", Rows: rows / 2, Cols: rows, Dist: gen.ConstLen{L: 32},
		Place: gen.Banded, Seed: 1}.Generate()
	scat := gen.Spec{Name: "s", Rows: rows / 2, Cols: rows, Dist: gen.ConstLen{L: 8},
		Place: gen.Random, Seed: 2}.Generate()
	// Stack the two halves.
	rowPtr := make([]int, rows+1)
	copy(rowPtr, dense.RowPtr)
	off := dense.NNZ()
	for i := 0; i <= rows/2; i++ {
		rowPtr[rows/2+i] = off + scat.RowPtr[i]
	}
	a := &sparse.CSR{
		Rows: rows, Cols: rows,
		RowPtr: rowPtr,
		ColIdx: append(append([]int{}, dense.ColIdx...), scat.ColIdx...),
		Val:    append(append([]float64{}, dense.Val...), scat.Val...),
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	prep, err := New(Options{Metric: CacheLineCost, DisableReorder: true}).Prepare(m, a)
	if err != nil {
		t.Fatal(err)
	}
	p := prep.(*Prepared)
	cs := costSum(a, p.Format(), CacheLineCost)
	var costMin, costMax = math.MaxInt, 0
	var nnzMin, nnzMax = math.MaxInt, 0
	for _, reg := range p.Regions() {
		// Cost of the region, approximated at row granularity.
		rLo := rowOfPosition(p.Format(), reg.Lo)
		rHi := rowOfPosition(p.Format(), reg.Hi-1) + 1
		c := cs[rHi] - cs[rLo]
		costMin, costMax = mini(costMin, c), maxi(costMax, c)
		n := reg.Hi - reg.Lo
		nnzMin, nnzMax = mini(nnzMin, n), maxi(nnzMax, n)
	}
	costSpread := float64(costMax-costMin) / float64(costMax)
	nnzSpread := float64(nnzMax-nnzMin) / float64(nnzMax)
	if costSpread > 0.12 {
		t.Fatalf("cache-line cost spread %.2f, want balanced", costSpread)
	}
	if nnzSpread < 2*costSpread {
		t.Fatalf("nnz spread %.2f not larger than cost spread %.2f: test matrix not discriminating", nnzSpread, costSpread)
	}
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}
func mini(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestRegionsExposedAndValid(t *testing.T) {
	m := amp.AMDRyzen97950X3D()
	a := algtest.Matrix("powerlaw")
	prep, err := New(Options{}).Prepare(m, a)
	if err != nil {
		t.Fatal(err)
	}
	p := prep.(*Prepared)
	if err := checkRegions(p.Format(), p.Regions()); err != nil {
		t.Fatal(err)
	}
	if p.Format().Validate(a) != nil {
		t.Fatal("format invalid")
	}
	if len(p.Regions()) != m.TotalCores() {
		t.Fatalf("regions %d, want %d", len(p.Regions()), m.TotalCores())
	}
}

// Assignments must reference only selected cores and merge contiguous
// original rows into few spans when no reorder happened.
func TestAssignmentsSpanMerging(t *testing.T) {
	m := amp.IntelI912900KF()
	a := algtest.Matrix("banded-fem")
	prep, err := New(Options{DisableReorder: true, Metric: NNZCost}).Prepare(m, a)
	if err != nil {
		t.Fatal(err)
	}
	for _, asg := range prep.Assignments() {
		if len(asg.Spans) > 1 {
			t.Fatalf("identity-order assignment fragmented into %d spans", len(asg.Spans))
		}
	}
	_ = costmodel.Span{}
}

// HASpMV on the simulator must beat the naive even split on Intel — the
// end-to-end version of the costmodel's proportional-split test.
func TestHASpMVBeatsOneLevelOnIntel(t *testing.T) {
	m := amp.IntelI912900KF()
	p := costmodel.DefaultParams()
	a := gen.Spec{Name: "w", Rows: 30000, Cols: 30000, TargetNNZ: 600000,
		Dist: gen.NormalLen{Mean: 20, Std: 6, Min: 1, Max: 60}, Place: gen.Clustered, Seed: 9}.Generate()
	ha, err := New(Options{}).Prepare(m, a)
	if err != nil {
		t.Fatal(err)
	}
	one, err := New(Options{OneLevel: true}).Prepare(m, a)
	if err != nil {
		t.Fatal(err)
	}
	tHA := costmodel.EstimateSpMV(m, p, a, ha.Assignments()).Seconds
	tOne := costmodel.EstimateSpMV(m, p, a, one.Assignments()).Seconds
	if tHA >= tOne {
		t.Fatalf("HASpMV %.4g not faster than one-level %.4g", tHA, tOne)
	}
}
