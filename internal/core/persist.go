package core

import (
	"fmt"

	"haspmv/internal/amp"
	"haspmv/internal/costmodel"
	"haspmv/internal/kernel"
	"haspmv/internal/sparse"
)

// Prepared-state persistence. A Prepared instance is a pile of flat
// arrays (the matrix, the HACSR indirection, the cost prefix sums, the
// compressed index/value streams, the segment descriptors) plus a
// handful of scalars; everything else — regions, scratch, calibration
// gauges — is cheaply derivable. Snapshot exposes exactly that split so
// internal/store can serialize the arrays as raw sections (and mmap
// them back with zero-copy aliasing) without importing any of the
// package internals, and RestorePrepared rebuilds a servable instance
// from the arrays in O(rows-touched-by-boundaries) time: the partition
// binary searches, format/mode re-picks and scratch allocation — the
// same work Repartition does — instead of the O(nnz) analysis sweeps
// Prepare runs.

// SnapshotMeta is the scalar part of a snapshot (everything that is
// not a flat array). It round-trips through JSON in the store's meta
// block.
type SnapshotMeta struct {
	// MachineName pins the machine model the partition was cut for;
	// RestorePrepared refuses a different machine (the proportion,
	// core list and unroll thresholds would all be wrong).
	MachineName string
	// Opts are the fully resolved options (Base and PProportion filled
	// in), so restore never re-runs AutoBase or the proportion model.
	Opts Options
	Rows int
	Cols int
	// HBase/HNumShort are the HACSR threshold fields.
	HBase     int
	HNumShort int
	// Stream scalars (indexStreams).
	RunNNZ  int
	NNZ16   int
	MaxSpan int
	BestIdx int64
	// Value-stream scalars.
	ValFormat ValueFormat
	Distinct  int
	// Skew is the row-length profile driving execution-mode dispatch
	// (recomputing it needs a counting sort over the row lengths).
	Skew costmodel.RowSkew
	// Reorder records the strategy decision behind the stored order.
	Reorder ReorderDecision
}

// PreparedSnapshot is the full serializable state of a Prepared
// instance: the scalar meta plus every flat array. The slices alias the
// live instance (Snapshot) or the store's mmap window (load); they are
// read-only in both directions.
type PreparedSnapshot struct {
	Meta SnapshotMeta

	// Matrix arrays. ColIdx is nil when Col32 exists: the u32 stream
	// holds the same columns at half the bytes, and every path that
	// walks indices (kernels, boundary walks) prefers it, so the []int
	// reference is not persisted.
	RowPtr []int
	ColIdx []int
	Val    []float64

	// HACSR indirection.
	HPerm        []int
	HRowPtr      []int
	HRowBeginNNZ []int

	EmptyRows []int
	CS        []int

	// Compressed index streams.
	Col32   []uint32
	Col16   []uint16
	RowBase []int
	Elig    []int
	Runs    []kernel.DiaRun
	RowRun  []int32
	DiaInel []int

	// Compressed value streams.
	PalIdx []uint8
	Pal    []float64
	Val32  []float32

	// Segment descriptors (nil when segmented execution is off for
	// this instance).
	Segs []kernel.Segment
}

// Snapshot captures the instance's full persistent state. The returned
// slices alias the live instance — treat them as read-only and do not
// hold them across a mutation of the instance (there are none today:
// Repartition only moves boundaries).
func (p *Prepared) Snapshot() *PreparedSnapshot {
	st, vs := &p.streams, &p.values
	s := &PreparedSnapshot{
		Meta: SnapshotMeta{
			MachineName: p.machine.Name,
			Opts:        p.opts,
			Rows:        p.mat.Rows,
			Cols:        p.mat.Cols,
			HBase:       p.h.Base,
			HNumShort:   p.h.NumShort,
			RunNNZ:      st.runNNZ,
			NNZ16:       st.nnz16,
			MaxSpan:     st.maxSpan,
			BestIdx:     st.bestIdx,
			ValFormat:   vs.format,
			Distinct:    vs.distinct,
			Skew:        p.skew,
			Reorder:     p.reorder,
		},
		RowPtr:       p.mat.RowPtr,
		Val:          p.mat.Val,
		HPerm:        p.h.Perm,
		HRowPtr:      p.h.RowPtr,
		HRowBeginNNZ: p.h.RowBeginNNZ,
		EmptyRows:    p.emptyRows,
		CS:           p.cs,
		Col32:        st.col32,
		Col16:        st.col16,
		RowBase:      st.rowBase,
		Elig:         st.elig,
		Runs:         st.runs,
		RowRun:       st.rowRun,
		DiaInel:      st.diaInel,
		PalIdx:       vs.palIdx,
		Pal:          vs.pal,
		Val32:        vs.val32,
		Segs:         p.segs,
	}
	if st.col32 == nil {
		s.ColIdx = p.mat.ColIdx
	}
	return s
}

// checkSnapshot verifies the cross-array shape invariants a restore
// relies on, so a malformed (but checksum-clean) file fails with an
// error instead of an index panic deep in a kernel.
func checkSnapshot(s *PreparedSnapshot) error {
	m := s.Meta.Rows
	if m < 0 || s.Meta.Cols < 0 {
		return fmt.Errorf("core: snapshot shape %dx%d", m, s.Meta.Cols)
	}
	if len(s.RowPtr) != m+1 {
		return fmt.Errorf("core: snapshot row pointer length %d, want %d", len(s.RowPtr), m+1)
	}
	nnz := s.RowPtr[m]
	if nnz < 0 || len(s.Val) != nnz {
		return fmt.Errorf("core: snapshot value length %d, want %d", len(s.Val), nnz)
	}
	if s.ColIdx == nil && s.Col32 == nil && nnz > 0 {
		return fmt.Errorf("core: snapshot has neither reference nor u32 column indices")
	}
	if s.ColIdx != nil && len(s.ColIdx) != nnz {
		return fmt.Errorf("core: snapshot column index length %d, want %d", len(s.ColIdx), nnz)
	}
	if len(s.HPerm) != m || len(s.HRowBeginNNZ) != m || len(s.HRowPtr) != m+1 {
		return fmt.Errorf("core: snapshot hacsr lengths %d/%d/%d, want rows %d",
			len(s.HPerm), len(s.HRowBeginNNZ), len(s.HRowPtr), m)
	}
	if s.HRowPtr[m] != nnz {
		return fmt.Errorf("core: snapshot hacsr nnz %d, want %d", s.HRowPtr[m], nnz)
	}
	if len(s.CS) != m+1 {
		return fmt.Errorf("core: snapshot cost prefix length %d, want %d", len(s.CS), m+1)
	}
	if s.Col32 != nil && len(s.Col32) != nnz {
		return fmt.Errorf("core: snapshot u32 stream length %d, want %d", len(s.Col32), nnz)
	}
	if s.Col16 != nil && (len(s.Col16) != nnz || len(s.RowBase) != m || len(s.Elig) != m+1) {
		return fmt.Errorf("core: snapshot u16 stream lengths %d/%d/%d inconsistent with %d rows, %d nnz",
			len(s.Col16), len(s.RowBase), len(s.Elig), m, nnz)
	}
	if s.Runs != nil && (len(s.RowRun) != m+1 || len(s.DiaInel) != m+1) {
		return fmt.Errorf("core: snapshot dia prefix lengths %d/%d, want %d", len(s.RowRun), len(s.DiaInel), m+1)
	}
	if s.PalIdx != nil && len(s.PalIdx) != nnz {
		return fmt.Errorf("core: snapshot palette stream length %d, want %d", len(s.PalIdx), nnz)
	}
	if s.Val32 != nil && len(s.Val32) != nnz {
		return fmt.Errorf("core: snapshot f32 stream length %d, want %d", len(s.Val32), nnz)
	}
	if s.Segs != nil && len(s.Segs) != m {
		return fmt.Errorf("core: snapshot segment count %d, want %d", len(s.Segs), m)
	}
	switch s.Meta.ValFormat {
	case ValPalette:
		if s.PalIdx == nil || len(s.Pal) == 0 || len(s.Pal) > PaletteMax {
			return fmt.Errorf("core: snapshot palette format without a valid palette")
		}
	case ValF32:
		if s.Val32 == nil && nnz > 0 {
			return fmt.Errorf("core: snapshot f32 format without the f32 stream")
		}
	}
	return nil
}

// RestorePrepared rebuilds a servable Prepared instance from a
// snapshot, reusing every stored array as-is (the snapshot's slices —
// typically an mmap window — become the instance's live streams). Only
// the derived state is recomputed: the partition boundaries from the
// stored cost prefix sums, per-region formats and modes, scratch, and
// the triad calibration — O(cores·log nnz) work, no O(nnz) sweep.
func RestorePrepared(m *amp.Machine, snap *PreparedSnapshot) (*Prepared, error) {
	if m == nil {
		return nil, fmt.Errorf("core: restore needs a machine")
	}
	if m.Name != snap.Meta.MachineName {
		return nil, fmt.Errorf("core: snapshot prepared for machine %q, restoring on %q", snap.Meta.MachineName, m.Name)
	}
	if err := checkSnapshot(snap); err != nil {
		return nil, err
	}
	opts := snap.Meta.Opts
	cores := m.Cores(opts.Config)
	if len(cores) == 0 {
		return nil, fmt.Errorf("core: restore has no cores for config %v", opts.Config)
	}
	if opts.PProportion <= 0 || opts.PProportion >= 1 {
		return nil, fmt.Errorf("core: snapshot proportion %v outside (0,1)", opts.PProportion)
	}
	mat := &sparse.CSR{
		Rows: snap.Meta.Rows, Cols: snap.Meta.Cols,
		RowPtr: snap.RowPtr, ColIdx: snap.ColIdx, Val: snap.Val,
	}
	h := &HACSR{
		Rows: snap.Meta.Rows, Cols: snap.Meta.Cols,
		Base:        snap.Meta.HBase,
		Perm:        snap.HPerm,
		RowPtr:      snap.HRowPtr,
		RowBeginNNZ: snap.HRowBeginNNZ,
		NumShort:    snap.Meta.HNumShort,
	}
	unroll := make([]int, len(cores))
	for i, c := range cores {
		if g, _ := m.GroupOf(c); g.Kind == amp.Performance {
			unroll[i] = 32
		} else {
			unroll[i] = 64
		}
	}
	p := &Prepared{
		mat: mat, h: h, machine: m,
		opts: opts, emptyRows: snap.EmptyRows, unroll: unroll,
		cs: snap.CS, cores: cores,
		streams: indexStreams{
			col32: snap.Col32, col16: snap.Col16, rowBase: snap.RowBase,
			elig: snap.Elig, runs: snap.Runs, rowRun: snap.RowRun,
			diaInel: snap.DiaInel, runNNZ: snap.Meta.RunNNZ,
			nnz16: snap.Meta.NNZ16, maxSpan: snap.Meta.MaxSpan,
			bestIdx: snap.Meta.BestIdx,
		},
		values: valueStreams{
			format: snap.Meta.ValFormat, palIdx: snap.PalIdx,
			pal: snap.Pal, val32: snap.Val32, distinct: snap.Meta.Distinct,
		},
		segs:    snap.Segs,
		skew:    snap.Meta.Skew,
		reorder: snap.Meta.Reorder,
	}
	for _, c := range cores {
		if g, _ := m.GroupOf(c); g.Kind == amp.Performance {
			p.pCount++
		}
	}
	regions := partition(mat, p.streams.col32, h, p.cs, m, cores, opts.PProportion, opts.Metric, opts.OneLevel, nil)
	if err := checkRegions(h, regions); err != nil {
		return nil, err
	}
	p.accum = make([]coreAccum, len(regions))
	p.assignFormats(regions)
	p.assignModes(regions)
	p.regions.Store(&regions)
	p.scratch.Store(p.newScratch())
	p.triadMBps = int64(costmodel.EstimateTriad(m, costmodel.DefaultParams(), cores, triadElems).GBps * 1000)
	cPrepares.Add(1)
	gRegions.Set(int64(len(regions)))
	return p, nil
}
