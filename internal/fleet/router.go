package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"haspmv/internal/fleet/shard"
	"haspmv/internal/telemetry"
)

var (
	cRouterRequests = telemetry.NewCounter("fleet_router_requests")
	cRouterRetries  = telemetry.NewCounter("fleet_router_retries")
	cRouterScatter  = telemetry.NewCounter("fleet_router_sharded_requests")
	cRouterFailed   = telemetry.NewCounter("fleet_router_failed")
)

// RouterOptions configures the fleet front-end.
type RouterOptions struct {
	// Backends returns the live worker addresses (Supervisor.Endpoints).
	// Called per request; the hash ring is rebuilt only when the set
	// changes. Required.
	Backends func() []string
	// Status, when set, backs GET /v1/fleet (Supervisor.Snapshot).
	Status func() []WorkerInfo
	// Shards maps "name@scale" to a shard count: requests for those
	// matrices take the scatter-gather path across the fleet instead of
	// landing on one worker.
	Shards map[string]int
	// DefaultScale keys shard lookups for requests that omit a scale
	// (must match the workers' -scale). Default 16.
	DefaultScale int
	// VNodes is the virtual nodes per backend on the hash ring (default 64).
	VNodes int
	// Attempts bounds how many distinct backends a request tries before
	// failing (default 3; transport errors, 429 and draining 503s move to
	// the next ring candidate). Capped at the live backend count.
	Attempts int
	// Client issues the proxied requests (default: 30s timeout).
	Client *http.Client
	// Logf, when set, receives one line per retry and failure.
	Logf func(format string, args ...any)
}

func (o RouterOptions) withDefaults() RouterOptions {
	if o.DefaultScale <= 0 {
		o.DefaultScale = 16
	}
	if o.VNodes <= 0 {
		o.VNodes = 64
	}
	if o.Attempts <= 0 {
		o.Attempts = 3
	}
	if o.Client == nil {
		o.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// Router is the fleet front-end: it consistent-hashes each matrix to a
// worker (so every matrix's requests coalesce in one worker's batcher
// and its prepared form stays resident in one cache), fails over around
// dead or draining workers, and scatter-gathers configured matrices
// across row-shards — slicing x by each shard's column window and
// merging the fragments with the extraY discipline.
type Router struct {
	opts RouterOptions
	mux  *http.ServeMux

	ringMu  sync.Mutex
	ringKey string
	ring    *hashRing

	planMu sync.Mutex
	plans  map[string][]shard.Desc
}

// NewRouter builds the front-end handler.
func NewRouter(opts RouterOptions) (*Router, error) {
	opts = opts.withDefaults()
	if opts.Backends == nil {
		return nil, fmt.Errorf("fleet: router needs a Backends source")
	}
	rt := &Router{opts: opts, plans: map[string][]shard.Desc{}}
	rt.mux = http.NewServeMux()
	rt.mux.HandleFunc("/v1/multiply", rt.handleMultiply)
	rt.mux.HandleFunc("/v1/fleet", rt.handleFleet)
	rt.mux.HandleFunc("/healthz", rt.handleHealthz)
	return rt, nil
}

func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rt.mux.ServeHTTP(w, r)
}

// --- consistent hash ring ---

type ringPoint struct {
	hash uint64
	addr string
}

type hashRing struct {
	points   []ringPoint
	backends []string
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	io.WriteString(h, s)
	return h.Sum64()
}

func newHashRing(backends []string, vnodes int) *hashRing {
	r := &hashRing{backends: backends}
	for _, b := range backends {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash64(fmt.Sprintf("%s#%d", b, v)), b})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

// candidates returns the distinct backends for key in ring order
// starting at its owner — the failover sequence.
func (r *hashRing) candidates(key string, max int) []string {
	if len(r.points) == 0 {
		return nil
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	var out []string
	seen := map[string]bool{}
	for i := 0; i < len(r.points) && len(out) < max; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.addr] {
			seen[p.addr] = true
			out = append(out, p.addr)
		}
	}
	return out
}

// ringFor rebuilds the ring only when the backend set changed.
func (rt *Router) ringFor(backends []string) *hashRing {
	key := strings.Join(backends, ",")
	rt.ringMu.Lock()
	defer rt.ringMu.Unlock()
	if rt.ring == nil || rt.ringKey != key {
		rt.ring = newHashRing(backends, rt.opts.VNodes)
		rt.ringKey = key
	}
	return rt.ring
}

// --- request routing ---

type routeError struct {
	status int
	body   []byte
	header http.Header
}

func (e *routeError) Error() string { return fmt.Sprintf("upstream status %d", e.status) }

// forward POSTs body to one backend for key, walking the failover
// candidates on transport errors and retryable statuses (429, and 503 —
// the draining signal). A non-retryable upstream answer is returned as
// a routeError so the caller can relay it verbatim.
func (rt *Router) forward(ctx context.Context, key, path string, body []byte, reqID string) ([]byte, error) {
	backends := rt.opts.Backends()
	if len(backends) == 0 {
		return nil, &routeError{status: http.StatusServiceUnavailable, body: []byte(`{"error":"no live workers"}`)}
	}
	attempts := rt.opts.Attempts
	if attempts > len(backends) {
		attempts = len(backends)
	}
	cands := rt.ringFor(backends).candidates(key, attempts)
	var lastErr error
	for i, addr := range cands {
		if i > 0 {
			cRouterRetries.Add(1)
			rt.opts.Logf("fleet: retrying %s on %s (%v)", key, addr, lastErr)
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, "http://"+addr+path, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		if reqID != "" {
			req.Header.Set("X-Request-ID", reqID)
		}
		resp, err := rt.opts.Client.Do(req)
		if err != nil {
			// Transport error: the worker died or is mid-restart. The next
			// ring candidate owns the key now.
			lastErr = err
			continue
		}
		respBody, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		switch resp.StatusCode {
		case http.StatusOK:
			return respBody, nil
		case http.StatusServiceUnavailable, http.StatusTooManyRequests:
			// Draining or shedding: honor the signal by moving on.
			lastErr = fmt.Errorf("%s: status %d", addr, resp.StatusCode)
			continue
		default:
			return nil, &routeError{status: resp.StatusCode, body: respBody, header: resp.Header}
		}
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("no candidates")
	}
	return nil, fmt.Errorf("fleet: %s failed on all %d candidates: %w", key, len(cands), lastErr)
}

func (rt *Router) handleMultiply(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	cRouterRequests.Add(1)
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 64<<20))
	if err != nil {
		httpError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	var req struct {
		Matrix string    `json:"matrix"`
		Scale  int       `json:"scale"`
		X      []float64 `json:"x"`
	}
	if err := json.Unmarshal(body, &req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	if req.Scale == 0 {
		req.Scale = rt.opts.DefaultScale
	}
	key := fmt.Sprintf("%s@%d", req.Matrix, req.Scale)
	reqID := r.Header.Get("X-Request-ID")
	if count := rt.opts.Shards[key]; count > 1 {
		rt.scatterMultiply(w, r, key, count, req.Matrix, req.Scale, req.X, reqID)
		return
	}
	resp, err := rt.forward(r.Context(), key, "/v1/multiply", body, reqID)
	if err != nil {
		rt.relayError(w, key, err)
		return
	}
	writeJSONBytes(w, reqID, resp)
}

// scatterMultiply fans one multiply out across the matrix's row-shards:
// shard i goes to the ring owner of "key#i/count" with the usual
// failover, carrying only the x slice its column window needs, and the
// returned fragments gather into the full y.
func (rt *Router) scatterMultiply(w http.ResponseWriter, r *http.Request, key string, count int, matrix string, scale int, x []float64, reqID string) {
	cRouterScatter.Add(1)
	plan, err := rt.shardPlan(r.Context(), key, matrix, scale, count)
	if err != nil {
		rt.relayError(w, key, err)
		return
	}
	rows := 0
	for _, d := range plan {
		if d.Row1+1 > rows {
			rows = d.Row1 + 1
		}
	}
	type fragResult struct {
		resp struct {
			Y    []float64 `json:"y"`
			Row0 int       `json:"row0"`
		}
		err error
	}
	frags := make([]fragResult, count)
	var wg sync.WaitGroup
	for i, d := range plan {
		if d.ColHi > len(x) {
			httpError(w, http.StatusBadRequest, "x has %d elements; shard %d needs columns up to %d", len(x), i, d.ColHi)
			return
		}
		wg.Add(1)
		go func(i int, d shard.Desc) {
			defer wg.Done()
			sub, err := json.Marshal(map[string]any{
				"matrix": matrix, "scale": scale,
				"shard_index": i, "shard_count": count,
				"x": x[d.ColLo:d.ColHi],
			})
			if err != nil {
				frags[i].err = err
				return
			}
			respBody, err := rt.forward(r.Context(), fmt.Sprintf("%s#%d/%d", key, i, count), "/v1/multiply", sub, reqID)
			if err != nil {
				frags[i].err = err
				return
			}
			frags[i].err = json.Unmarshal(respBody, &frags[i].resp)
		}(i, d)
	}
	wg.Wait()
	parts := make([][]float64, count)
	for i := range frags {
		if frags[i].err != nil {
			rt.relayError(w, key, frags[i].err)
			return
		}
		parts[i] = frags[i].resp.Y
	}
	y := make([]float64, rows)
	if err := shard.Gather(y, plan, parts); err != nil {
		rt.relayError(w, key, err)
		return
	}
	out, _ := json.Marshal(map[string]any{
		"matrix": matrix, "scale": scale,
		"rows": rows, "cols": len(x),
		"shard_count": count,
		"y":           y,
	})
	writeJSONBytes(w, reqID, out)
}

// shardPlan fetches (and caches) the matrix's shard plan from any
// worker — plans are a pure function of the matrix, so every worker
// reports the identical one.
func (rt *Router) shardPlan(ctx context.Context, key, matrix string, scale, count int) ([]shard.Desc, error) {
	cacheKey := fmt.Sprintf("%s/%d", key, count)
	rt.planMu.Lock()
	plan, ok := rt.plans[cacheKey]
	rt.planMu.Unlock()
	if ok {
		return plan, nil
	}
	backends := rt.opts.Backends()
	if len(backends) == 0 {
		return nil, &routeError{status: http.StatusServiceUnavailable, body: []byte(`{"error":"no live workers"}`)}
	}
	var lastErr error
	for _, addr := range rt.ringFor(backends).candidates(cacheKey, len(backends)) {
		url := fmt.Sprintf("http://%s/v1/shardplan?matrix=%s&scale=%d&count=%d", addr, matrix, scale, count)
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return nil, err
		}
		resp, err := rt.opts.Client.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode != http.StatusOK {
			if resp.StatusCode == http.StatusServiceUnavailable {
				lastErr = fmt.Errorf("%s: draining", addr)
				continue
			}
			return nil, &routeError{status: resp.StatusCode, body: body, header: resp.Header}
		}
		var pr struct {
			Shards []shard.Desc `json:"shards"`
		}
		if err := json.Unmarshal(body, &pr); err != nil {
			lastErr = err
			continue
		}
		if len(pr.Shards) != count {
			return nil, fmt.Errorf("fleet: worker returned %d shards, want %d", len(pr.Shards), count)
		}
		rt.planMu.Lock()
		rt.plans[cacheKey] = pr.Shards
		rt.planMu.Unlock()
		return pr.Shards, nil
	}
	return nil, fmt.Errorf("fleet: shard plan for %s unavailable: %w", key, lastErr)
}

func (rt *Router) handleFleet(w http.ResponseWriter, r *http.Request) {
	type fleetStatus struct {
		Workers  []WorkerInfo `json:"workers"`
		Backends []string     `json:"backends"`
	}
	st := fleetStatus{Backends: rt.opts.Backends()}
	if rt.opts.Status != nil {
		st.Workers = rt.opts.Status()
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(st)
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if len(rt.opts.Backends()) == 0 {
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, "no live workers")
		return
	}
	w.WriteHeader(http.StatusOK)
	io.WriteString(w, "ok\n")
}

// relayError maps a routing failure onto the client response: upstream
// answers pass through with their status, exhaustion becomes 502.
func (rt *Router) relayError(w http.ResponseWriter, key string, err error) {
	cRouterFailed.Add(1)
	rt.opts.Logf("fleet: %s failed: %v", key, err)
	if re, ok := err.(*routeError); ok {
		if ra := re.header.Get("Retry-After"); ra != "" {
			w.Header().Set("Retry-After", ra)
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(re.status)
		w.Write(re.body)
		return
	}
	httpError(w, http.StatusBadGateway, "%v", err)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSONBytes(w http.ResponseWriter, reqID string, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	if reqID != "" {
		w.Header().Set("X-Request-ID", reqID)
	}
	w.Write(body)
}
