package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"haspmv/internal/amp"
	"haspmv/internal/core"
	"haspmv/internal/gen"
	"haspmv/internal/server"
)

// newWorker boots a real in-process haspmv-serve handler — the router
// tests exercise the identical wire protocol the process fleet speaks.
func newWorker(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(server.New(server.Config{
		Machine:   amp.IntelI912900KF(),
		Algorithm: core.New(core.Options{}),
	}))
	t.Cleanup(srv.Close)
	return srv
}

func workerAddr(s *httptest.Server) string {
	return strings.TrimPrefix(s.URL, "http://")
}

func postMultiply(t *testing.T, rt *Router, body string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/multiply", bytes.NewReader([]byte(body)))
	w := httptest.NewRecorder()
	rt.ServeHTTP(w, req)
	var out map[string]any
	if w.Body.Len() > 0 {
		if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
			t.Fatalf("bad response JSON %q: %v", w.Body.String(), err)
		}
	}
	return w, out
}

func TestRouterHashStickiness(t *testing.T) {
	// Counting fronts over one real worker: the same matrix must always
	// land on the same backend; distinct matrices should spread.
	worker := newWorker(t)
	hits := make([]int, 3)
	var mu sync.Mutex
	fronts := make([]*httptest.Server, 3)
	for i := range fronts {
		i := i
		fronts[i] = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			mu.Lock()
			hits[i]++
			mu.Unlock()
			r.URL.Host = workerAddr(worker)
			resp, err := http.Post(worker.URL+r.URL.Path, "application/json", r.Body)
			if err != nil {
				w.WriteHeader(http.StatusBadGateway)
				return
			}
			defer resp.Body.Close()
			w.WriteHeader(resp.StatusCode)
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body)
			w.Write(buf.Bytes())
		}))
		defer fronts[i].Close()
	}
	backends := []string{workerAddr(fronts[0]), workerAddr(fronts[1]), workerAddr(fronts[2])}
	rt, err := NewRouter(RouterOptions{Backends: func() []string { return backends }})
	if err != nil {
		t.Fatal(err)
	}

	a := gen.Representative("dawson5", 16)
	x := make([]float64, a.Cols)
	body := mustBody(t, "dawson5", 16, x)
	for i := 0; i < 10; i++ {
		w, _ := postMultiply(t, rt, body)
		if w.Code != http.StatusOK {
			t.Fatalf("request %d: status %d body %s", i, w.Code, w.Body.String())
		}
	}
	mu.Lock()
	defer mu.Unlock()
	owners := 0
	for _, h := range hits {
		if h > 0 {
			owners++
		}
	}
	if owners != 1 {
		t.Fatalf("one matrix hit %d backends (%v), want sticky routing to 1", owners, hits)
	}
}

func mustBody(t *testing.T, name string, scale int, x []float64) string {
	t.Helper()
	b, err := json.Marshal(map[string]any{"matrix": name, "scale": scale, "x": x})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestRouterFailover(t *testing.T) {
	worker := newWorker(t)
	// A dead backend (listener closed) and a draining backend: every
	// attempt at either must fail over to the live worker.
	dead := httptest.NewServer(http.NotFoundHandler())
	deadAddr := workerAddr(dead)
	dead.Close()
	draining := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer draining.Close()

	backends := []string{deadAddr, workerAddr(draining), workerAddr(worker)}
	rt, err := NewRouter(RouterOptions{
		Backends: func() []string { return backends },
		Attempts: 3,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	a := gen.Representative("dawson5", 16)
	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = float64(i%7) + 1
	}
	// Many matrices so keys hash across all three candidates.
	for i := 0; i < 12; i++ {
		w, out := postMultiply(t, rt, mustBody(t, "dawson5", 16, x))
		if w.Code != http.StatusOK {
			t.Fatalf("request %d: status %d body %s", i, w.Code, w.Body.String())
		}
		if _, ok := out["y"]; !ok {
			t.Fatalf("request %d: no y in %v", i, out)
		}
	}
}

func TestRouterRelaysUpstreamErrors(t *testing.T) {
	worker := newWorker(t)
	backends := []string{workerAddr(worker)}
	rt, err := NewRouter(RouterOptions{Backends: func() []string { return backends }})
	if err != nil {
		t.Fatal(err)
	}
	// Unknown matrix: worker's 404 must pass through, not become a 502.
	w, _ := postMultiply(t, rt, mustBody(t, "no-such-matrix", 16, []float64{1}))
	if w.Code != http.StatusNotFound {
		t.Fatalf("status %d for unknown matrix, want 404: %s", w.Code, w.Body.String())
	}
	// Malformed body: rejected at the router.
	w2, _ := postMultiply(t, rt, "{not json")
	if w2.Code != http.StatusBadRequest {
		t.Fatalf("status %d for bad JSON, want 400", w2.Code)
	}
}

func TestRouterNoBackends(t *testing.T) {
	rt, err := NewRouter(RouterOptions{Backends: func() []string { return nil }})
	if err != nil {
		t.Fatal(err)
	}
	hw := httptest.NewRecorder()
	rt.ServeHTTP(hw, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if hw.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz %d with no backends, want 503", hw.Code)
	}
	if hw.Header().Get("Retry-After") == "" {
		t.Fatal("healthz 503 without Retry-After")
	}
	w, _ := postMultiply(t, rt, mustBody(t, "dawson5", 16, []float64{1}))
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("multiply %d with no backends, want 503", w.Code)
	}
}

func TestRouterScatterGather(t *testing.T) {
	workers := []*httptest.Server{newWorker(t), newWorker(t), newWorker(t)}
	var backends []string
	for _, s := range workers {
		backends = append(backends, workerAddr(s))
	}
	const name, scale, shards = "dawson5", 16, 3
	rt, err := NewRouter(RouterOptions{
		Backends: func() []string { return backends },
		Shards:   map[string]int{fmt.Sprintf("%s@%d", name, scale): shards},
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}

	a := gen.Representative(name, scale)
	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = 1 + float64(i%11)*0.5
	}
	want := serialMultiply(a, x)

	w, out := postMultiply(t, rt, mustBody(t, name, scale, x))
	if w.Code != http.StatusOK {
		t.Fatalf("scatter multiply: status %d body %s", w.Code, w.Body.String())
	}
	if got := out["shard_count"]; got != float64(shards) {
		t.Fatalf("shard_count %v, want %d", got, shards)
	}
	y := out["y"].([]any)
	if len(y) != a.Rows {
		t.Fatalf("y has %d rows, want %d", len(y), a.Rows)
	}
	for i := range want {
		got := y[i].(float64)
		if diff := math.Abs(got - want[i]); diff > 1e-9*(1+math.Abs(want[i])) {
			t.Fatalf("row %d: got %v want %v", i, got, want[i])
		}
	}

	// A second call reuses the cached plan and must still agree.
	w2, out2 := postMultiply(t, rt, mustBody(t, name, scale, x))
	if w2.Code != http.StatusOK {
		t.Fatalf("second scatter multiply: status %d", w2.Code)
	}
	y2 := out2["y"].([]any)
	for i := range y {
		if y[i].(float64) != y2[i].(float64) {
			t.Fatalf("row %d: scatter result not reproducible", i)
		}
	}
}

func TestRouterScatterSurvivesWorkerLoss(t *testing.T) {
	workers := []*httptest.Server{newWorker(t), newWorker(t), newWorker(t)}
	var mu sync.Mutex
	backends := []string{workerAddr(workers[0]), workerAddr(workers[1]), workerAddr(workers[2])}
	const name, scale, shards = "dawson5", 16, 2
	rt, err := NewRouter(RouterOptions{
		Backends: func() []string {
			mu.Lock()
			defer mu.Unlock()
			return append([]string(nil), backends...)
		},
		Shards: map[string]int{fmt.Sprintf("%s@%d", name, scale): shards},
		Logf:   t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	a := gen.Representative(name, scale)
	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = float64(i%5) + 1
	}
	want := serialMultiply(a, x)
	check := func(tag string) {
		t.Helper()
		w, out := postMultiply(t, rt, mustBody(t, name, scale, x))
		if w.Code != http.StatusOK {
			t.Fatalf("%s: status %d body %s", tag, w.Code, w.Body.String())
		}
		y := out["y"].([]any)
		for i := range want {
			if diff := math.Abs(y[i].(float64) - want[i]); diff > 1e-9*(1+math.Abs(want[i])) {
				t.Fatalf("%s row %d: got %v want %v", tag, i, y[i], want[i])
			}
		}
	}
	check("before loss")
	// Kill one worker; the ring fails its shards over to survivors.
	workers[1].Close()
	check("after loss")
	// The supervisor notices and shrinks the backend set; still fine.
	mu.Lock()
	backends = []string{workerAddr(workers[0]), workerAddr(workers[2])}
	mu.Unlock()
	check("after backend update")
}

func TestRouterFleetStatus(t *testing.T) {
	rt, err := NewRouter(RouterOptions{
		Backends: func() []string { return []string{"127.0.0.1:1"} },
		Status: func() []WorkerInfo {
			return []WorkerInfo{{Index: 0, Pid: 42, State: StateUp, Addr: "127.0.0.1:1"}}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	w := httptest.NewRecorder()
	rt.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/fleet", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("fleet status %d", w.Code)
	}
	var st struct {
		Workers  []WorkerInfo `json:"workers"`
		Backends []string     `json:"backends"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if len(st.Workers) != 1 || st.Workers[0].Pid != 42 || len(st.Backends) != 1 {
		t.Fatalf("bad status: %+v", st)
	}
}
