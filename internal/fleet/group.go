// Package fleet scales the HASpMV serving stack past one process: a
// Supervisor spawns and babysits N haspmv-serve workers, a Router
// consistent-hashes matrices across them and retries around crashed or
// draining workers, and matrices too large (or too hot) for one worker
// are row-sharded — the router splits x by each shard's column window,
// fans out partial SpMVs, and gathers with the extraY merge discipline
// from internal/core (fragments of a cut row added in ascending shard
// order).
//
// Group is the in-process incarnation of the same topology: K shards of
// one matrix, each with its own dynamic batcher and its own slice of
// the machine model, behind a scatter-gather Multiply. Tests and the
// fleet-mode bench sweep use it to exercise sharding without processes;
// the HTTP Router reuses the identical plan/gather code, so what Group
// proves (bit-stable scatter-gather, balanced cuts) transfers to the
// process fleet.
package fleet

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"haspmv/internal/amp"
	"haspmv/internal/core"
	"haspmv/internal/fleet/shard"
	"haspmv/internal/server"
	"haspmv/internal/sparse"
	"haspmv/internal/telemetry"
)

var (
	gInprocShards    = telemetry.NewGauge("fleet_inproc_shards")
	cGroupRebalances = telemetry.NewCounter("fleet_rebalances")
)

// GroupOptions tunes an in-process shard group.
type GroupOptions struct {
	// Batcher is applied to every shard's dynamic batcher.
	Batcher server.BatcherOptions
	// WholeMachine prepares every shard against the full machine model
	// instead of a proportional slice of its core groups. The default
	// (false) divides the machine: shard k gets ~1/K of the P-cores and
	// ~1/K of the E-cores, and the nnz cut follows each slice's modeled
	// capability — the paper's heterogeneity-aware split, lifted from
	// cores to workers.
	WholeMachine bool
	// RebalanceMin is the minimum served requests per shard before
	// Rebalance trusts the measured compute means. Default 8.
	RebalanceMin int64
}

func (o GroupOptions) withDefaults() GroupOptions {
	if o.RebalanceMin <= 0 {
		o.RebalanceMin = 8
	}
	return o
}

// groupShard is one in-process worker: a prepared submatrix behind its
// own batcher, on its own machine slice.
type groupShard struct {
	desc    shard.Desc
	machine *amp.Machine
	batcher *server.Batcher
}

// Group is an in-process row-sharded serving unit for one matrix.
type Group struct {
	machine *amp.Machine
	mat     *sparse.CSR
	opts    GroupOptions
	rows    int

	mu     sync.RWMutex
	plan   []shard.Desc
	shards []*groupShard

	rebalances atomic.Int64
	closed     atomic.Bool
}

// NewGroup shards the matrix count ways and starts one batcher per
// shard. The caller must Close the group. The matrix is retained (and
// must not be mutated) so Rebalance can re-slice it.
func NewGroup(m *amp.Machine, a *sparse.CSR, count int, opts GroupOptions) (*Group, error) {
	if count < 1 {
		return nil, fmt.Errorf("fleet: shard count %d, want >= 1", count)
	}
	g := &Group{machine: m, mat: a, opts: opts.withDefaults(), rows: a.Rows}
	machines := g.shardMachines(count)
	plan, err := shard.Plan(a, count, machineWeights(machines))
	if err != nil {
		return nil, err
	}
	shards, err := g.buildShards(plan, machines)
	if err != nil {
		return nil, err
	}
	g.plan, g.shards = plan, shards
	gInprocShards.Set(int64(count))
	return g, nil
}

// shardMachines returns each shard's machine model: the full machine
// for every shard under WholeMachine, or near-equal slices of both core
// groups otherwise (every slice keeps at least one core per group, so
// the heterogeneity-aware level-1 split still applies inside a shard).
func (g *Group) shardMachines(count int) []*amp.Machine {
	out := make([]*amp.Machine, count)
	if g.opts.WholeMachine || count == 1 {
		for i := range out {
			out[i] = g.machine
		}
		return out
	}
	split := func(total, i int) int {
		n := total / count
		if i < total%count {
			n++
		}
		if n < 1 {
			n = 1
		}
		return n
	}
	for i := range out {
		sub := *g.machine
		sub.Name = fmt.Sprintf("%s/shard%d.%d", g.machine.Name, i, count)
		sub.Groups[0].Cores = split(g.machine.Groups[0].Cores, i)
		sub.Groups[1].Cores = split(g.machine.Groups[1].Cores, i)
		out[i] = &sub
	}
	return out
}

// machineWeights prices each shard machine the way core.DefaultProportion
// prices a core group: capability = sqrt(compute rate x per-core DRAM
// bandwidth) x cores, summed over groups. The nnz cut follows these
// weights, so an asymmetric split of the machine yields an asymmetric
// split of the matrix — the fleet-level P_proportion.
func machineWeights(machines []*amp.Machine) []float64 {
	w := make([]float64, len(machines))
	for i, m := range machines {
		for gi := range m.Groups {
			grp := &m.Groups[gi]
			compute := grp.FreqGHz * float64(grp.SIMDLanes)
			w[i] += math.Sqrt(compute*grp.MemBWGBps) * float64(grp.Cores)
		}
	}
	return w
}

// buildShards prepares and starts a batcher for every non-empty shard
// of the plan (an empty shard — possible only when count > nnz — gets
// no batcher and contributes an empty fragment).
func (g *Group) buildShards(plan []shard.Desc, machines []*amp.Machine) ([]*groupShard, error) {
	shards := make([]*groupShard, len(plan))
	for k, d := range plan {
		gs := &groupShard{desc: d, machine: machines[k]}
		if d.Rows() > 0 {
			sub := shard.Slice(g.mat, d)
			prep, err := core.New(core.Options{}).Prepare(machines[k], sub)
			if err != nil {
				for _, built := range shards[:k] {
					if built != nil && built.batcher != nil {
						built.batcher.Close()
					}
				}
				return nil, fmt.Errorf("fleet: prepare shard %d/%d: %w", k, len(plan), err)
			}
			gs.batcher = server.NewBatcher(prep, g.opts.Batcher)
		}
		shards[k] = gs
	}
	return shards, nil
}

// Multiply computes y = A*x through the shard group: x is split by each
// shard's column window, the partial SpMVs run concurrently through the
// per-shard batchers (so concurrent Multiply calls coalesce per shard),
// and the fragments are gathered with the extraY merge discipline. The
// result is bit-deterministic for a fixed plan: batching never changes
// a shard's bits (the core ComputeBatch guarantee) and the gather order
// is fixed.
func (g *Group) Multiply(ctx context.Context, y, x []float64) error {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if len(y) != g.rows {
		return fmt.Errorf("fleet: y has length %d, want %d", len(y), g.rows)
	}
	if len(x) != g.mat.Cols {
		return fmt.Errorf("fleet: x has length %d, want %d", len(x), g.mat.Cols)
	}
	plan, shards := g.plan, g.shards
	frags := make([][]float64, len(shards))
	errs := make([]error, len(shards))
	var wg sync.WaitGroup
	for k, sh := range shards {
		if sh.batcher == nil {
			frags[k] = make([]float64, 0)
			continue
		}
		frags[k] = make([]float64, sh.desc.Rows())
		xs := x[sh.desc.ColLo:sh.desc.ColHi]
		if k == len(shards)-1 {
			_, errs[k] = sh.batcher.Submit(ctx, frags[k], xs)
			continue
		}
		wg.Add(1)
		go func(k int, sh *groupShard, xs []float64) {
			defer wg.Done()
			_, errs[k] = sh.batcher.Submit(ctx, frags[k], xs)
		}(k, sh, xs)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return shard.Gather(y, plan, frags)
}

// ShardStats is one shard's snapshot for listings and the rebalancer.
type ShardStats struct {
	Desc    shard.Desc
	Machine string
	Stats   server.BatcherStats
}

// Stats snapshots every shard.
func (g *Group) Stats() []ShardStats {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]ShardStats, len(g.shards))
	for k, sh := range g.shards {
		out[k] = ShardStats{Desc: sh.desc, Machine: sh.machine.Name}
		if sh.batcher != nil {
			out[k].Stats = sh.batcher.Stats()
		}
	}
	return out
}

// Imbalance returns max/mean of the shards' measured per-request
// compute times (1.0 = perfectly balanced, 0 = not enough data): the
// fleet-level analogue of the adapter's per-core imbalance signal.
func (g *Group) Imbalance() float64 {
	stats := g.Stats()
	var means []float64
	for _, s := range stats {
		served := s.Stats.Coalesced + s.Stats.Solo
		if served < g.opts.RebalanceMin {
			return 0
		}
		if s.Desc.Rows() <= 0 {
			continue
		}
		means = append(means, float64(s.Stats.ComputeNs)/float64(served))
	}
	if len(means) < 2 {
		return 0
	}
	sum, maxv := 0.0, 0.0
	for _, m := range means {
		sum += m
		if m > maxv {
			maxv = m
		}
	}
	mean := sum / float64(len(means))
	if mean <= 0 {
		return 0
	}
	return maxv / mean
}

// Rebalance re-cuts the plan from measured per-shard compute rates:
// each shard's new weight is its observed nnz-per-nanosecond, so a
// shard that proved slower (contended cores, unlucky structure) sheds
// nonzeros to its neighbours — the fleet-level version of the adapter's
// boundary moves. Returns true when a new plan was installed. In-flight
// Multiply calls finish on the old shards; new calls see the new plan.
func (g *Group) Rebalance() (bool, error) {
	stats := g.Stats()
	weights := make([]float64, len(stats))
	for k, s := range stats {
		served := s.Stats.Coalesced + s.Stats.Solo
		if s.Desc.Rows() <= 0 || served < g.opts.RebalanceMin || s.Stats.ComputeNs <= 0 {
			return false, nil // not enough signal yet
		}
		meanNs := float64(s.Stats.ComputeNs) / float64(served)
		weights[k] = float64(s.Desc.NNZ()) / meanNs
	}
	g.mu.RLock()
	machines := make([]*amp.Machine, len(g.shards))
	for k, sh := range g.shards {
		machines[k] = sh.machine
	}
	oldPlan := g.plan
	g.mu.RUnlock()

	newPlan, err := shard.Plan(g.mat, len(weights), weights)
	if err != nil {
		return false, err
	}
	if planClose(oldPlan, newPlan, g.mat.NNZ()) {
		return false, nil
	}
	shards, err := g.buildShards(newPlan, machines)
	if err != nil {
		return false, err
	}
	g.mu.Lock()
	old := g.shards
	g.plan, g.shards = newPlan, shards
	g.mu.Unlock()
	for _, sh := range old {
		if sh.batcher != nil {
			go sh.batcher.Close()
		}
	}
	g.rebalances.Add(1)
	cGroupRebalances.Add(1)
	return true, nil
}

// Rebalances reports how many plan swaps Rebalance has installed.
func (g *Group) Rebalances() int64 { return g.rebalances.Load() }

// planClose reports whether every boundary moved less than 2% of nnz —
// below that, rebuilding shards costs more than the imbalance.
func planClose(a, b []shard.Desc, nnz int) bool {
	if len(a) != len(b) {
		return false
	}
	tol := nnz / 50
	for k := range a {
		if abs(a[k].Lo-b[k].Lo) > tol || abs(a[k].Hi-b[k].Hi) > tol {
			return false
		}
	}
	return true
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Close drains every shard batcher. The group must not be used after.
func (g *Group) Close() {
	if !g.closed.CompareAndSwap(false, true) {
		return
	}
	g.mu.Lock()
	shards := g.shards
	g.mu.Unlock()
	var wg sync.WaitGroup
	for _, sh := range shards {
		if sh.batcher == nil {
			continue
		}
		wg.Add(1)
		go func(b *server.Batcher) {
			defer wg.Done()
			b.Close()
		}(sh.batcher)
	}
	wg.Wait()
}
