package fleet

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"regexp"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"haspmv/internal/telemetry"
)

var (
	cWorkerRestarts = telemetry.NewCounter("fleet_worker_restarts")
	gWorkersUp      = telemetry.NewGauge("fleet_workers_up")
)

// Proc is one running worker as the supervisor sees it: an address to
// health-check and route to, a signal channel for drains, and a Wait
// that reports its exit.
type Proc interface {
	// Addr returns the worker's host:port once it is serving.
	Addr() string
	// Pid identifies the process for status listings (fakes may invent one).
	Pid() int
	// Signal delivers sig (SIGTERM asks for a graceful drain).
	Signal(sig os.Signal) error
	// Kill terminates immediately.
	Kill() error
	// Wait blocks until the worker exits and returns its exit error.
	Wait() error
}

// Launcher starts workers. ExecLauncher spawns real haspmv-serve
// processes; tests substitute in-process fakes.
type Launcher interface {
	Launch(ctx context.Context, index int) (Proc, error)
}

// WorkerState is a worker's position in the supervision lifecycle.
type WorkerState string

const (
	StateStarting  WorkerState = "starting"  // launched, not yet passing health checks
	StateUp        WorkerState = "up"        // serving, /healthz 200
	StateDraining  WorkerState = "draining"  // /healthz 503: finishing in-flight work
	StateUnhealthy WorkerState = "unhealthy" // alive but failing health checks
	StateDown      WorkerState = "down"      // exited, waiting out restart backoff
	StateStopped   WorkerState = "stopped"   // supervisor shut it down for good
)

// WorkerInfo is one worker's status snapshot.
type WorkerInfo struct {
	Index    int         `json:"index"`
	Addr     string      `json:"addr,omitempty"`
	Pid      int         `json:"pid,omitempty"`
	State    WorkerState `json:"state"`
	Restarts int64       `json:"restarts"`
	LastExit string      `json:"last_exit,omitempty"`
}

// SupervisorOptions configures a worker fleet.
type SupervisorOptions struct {
	// Workers is the fleet size. Required, >= 1.
	Workers int
	// Launcher starts each worker. Required.
	Launcher Launcher
	// BackoffBase is the first restart delay after a crash; each
	// consecutive crash doubles it up to BackoffCap, and a worker that
	// stayed healthy for ResetAfter starts over at the base. Defaults:
	// 100ms base, 5s cap, 10s reset.
	BackoffBase time.Duration
	BackoffCap  time.Duration
	ResetAfter  time.Duration
	// HealthEvery is the /healthz polling period (default 250ms);
	// HealthTimeout bounds each probe (default 1s).
	HealthEvery   time.Duration
	HealthTimeout time.Duration
	// Logf, when set, receives one line per lifecycle event.
	Logf func(format string, args ...any)
}

func (o SupervisorOptions) withDefaults() SupervisorOptions {
	if o.BackoffBase <= 0 {
		o.BackoffBase = 100 * time.Millisecond
	}
	if o.BackoffCap <= 0 {
		o.BackoffCap = 5 * time.Second
	}
	if o.ResetAfter <= 0 {
		o.ResetAfter = 10 * time.Second
	}
	if o.HealthEvery <= 0 {
		o.HealthEvery = 250 * time.Millisecond
	}
	if o.HealthTimeout <= 0 {
		o.HealthTimeout = time.Second
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// worker is one supervised slot: the slot survives crashes, the Proc in
// it does not.
type worker struct {
	index int

	mu       sync.Mutex
	proc     Proc
	state    WorkerState
	lastExit string

	restarts  atomic.Int64
	replacing atomic.Bool // next exit is intentional: restart immediately
	gauge     *telemetry.Gauge
}

// Supervisor runs N workers, restarts the ones that die (exponential
// backoff, reset after sustained health), health-checks them, and
// drains them all on shutdown. It is the parent process's half of the
// fleet; the Router consumes its Endpoints.
type Supervisor struct {
	opts    SupervisorOptions
	workers []*worker
	client  *http.Client

	ctx      context.Context
	cancel   context.CancelFunc
	wg       sync.WaitGroup
	started  atomic.Bool
	draining atomic.Bool
}

// NewSupervisor validates the options; Start launches the fleet.
func NewSupervisor(opts SupervisorOptions) (*Supervisor, error) {
	opts = opts.withDefaults()
	if opts.Workers < 1 {
		return nil, fmt.Errorf("fleet: %d workers, want >= 1", opts.Workers)
	}
	if opts.Launcher == nil {
		return nil, fmt.Errorf("fleet: no launcher")
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Supervisor{
		opts:   opts,
		client: &http.Client{Timeout: opts.HealthTimeout},
		ctx:    ctx,
		cancel: cancel,
	}
	for i := 0; i < opts.Workers; i++ {
		s.workers = append(s.workers, &worker{
			index: i,
			state: StateDown,
			gauge: telemetry.NewGauge(fmt.Sprintf("fleet_worker%d_up", i)),
		})
	}
	return s, nil
}

// Start launches every worker slot's manager goroutine.
func (s *Supervisor) Start() {
	if !s.started.CompareAndSwap(false, true) {
		return
	}
	for _, w := range s.workers {
		s.wg.Add(1)
		go func(w *worker) {
			defer s.wg.Done()
			s.manage(w)
		}(w)
	}
}

// manage owns one worker slot: launch, watch, restart with backoff,
// forever — until the supervisor drains.
func (s *Supervisor) manage(w *worker) {
	backoff := s.opts.BackoffBase
	for {
		if s.ctx.Err() != nil {
			s.setState(w, StateStopped, "")
			return
		}
		proc, err := s.opts.Launcher.Launch(s.ctx, w.index)
		if err != nil {
			s.opts.Logf("fleet: worker %d launch failed: %v (retry in %s)", w.index, err, backoff)
			s.setState(w, StateDown, err.Error())
			if !s.sleep(backoff) {
				s.setState(w, StateStopped, "")
				return
			}
			backoff = s.nextBackoff(backoff)
			continue
		}
		w.mu.Lock()
		w.proc = proc
		w.mu.Unlock()
		s.setState(w, StateStarting, "")
		s.opts.Logf("fleet: worker %d up at %s (pid %d)", w.index, proc.Addr(), proc.Pid())

		start := time.Now()
		exitCh := make(chan error, 1)
		go func() { exitCh <- proc.Wait() }()
		pingCtx, stopPing := context.WithCancel(s.ctx)
		pingDone := make(chan struct{})
		go func() {
			defer close(pingDone)
			s.ping(pingCtx, w, proc)
		}()

		var exitErr error
		select {
		case exitErr = <-exitCh:
		case <-s.ctx.Done():
			// Shutdown: ask the worker to drain and wait for it.
			_ = proc.Signal(syscall.SIGTERM)
			exitErr = <-exitCh
			stopPing()
			<-pingDone
			s.setState(w, StateStopped, exitString(exitErr))
			s.opts.Logf("fleet: worker %d drained (%v)", w.index, exitErr)
			return
		}
		stopPing()
		<-pingDone

		uptime := time.Since(start)
		intentional := w.replacing.CompareAndSwap(true, false)
		w.restarts.Add(1)
		cWorkerRestarts.Add(1)
		s.setState(w, StateDown, exitString(exitErr))
		if intentional || uptime >= s.opts.ResetAfter {
			backoff = s.opts.BackoffBase
		}
		if intentional {
			s.opts.Logf("fleet: worker %d replaced after %s", w.index, uptime.Round(time.Millisecond))
			continue // no backoff for an operator-requested replace
		}
		s.opts.Logf("fleet: worker %d exited after %s: %v (restart in %s)", w.index, uptime.Round(time.Millisecond), exitErr, backoff)
		if !s.sleep(backoff) {
			s.setState(w, StateStopped, exitString(exitErr))
			return
		}
		backoff = s.nextBackoff(backoff)
	}
}

// ping polls the worker's /healthz until ctx ends, mapping 200 to up,
// 503 to draining, anything else (or no answer) to unhealthy.
func (s *Supervisor) ping(ctx context.Context, w *worker, proc Proc) {
	t := time.NewTicker(s.opts.HealthEvery)
	defer t.Stop()
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+proc.Addr()+"/healthz", nil)
		if err != nil {
			return
		}
		resp, err := s.client.Do(req)
		if ctx.Err() != nil {
			return
		}
		switch {
		case err != nil:
			s.setState(w, StateUnhealthy, "")
		case resp.StatusCode == http.StatusOK:
			s.setState(w, StateUp, "")
		case resp.StatusCode == http.StatusServiceUnavailable:
			s.setState(w, StateDraining, "")
		default:
			s.setState(w, StateUnhealthy, "")
		}
		if resp != nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}

func (s *Supervisor) setState(w *worker, st WorkerState, lastExit string) {
	w.mu.Lock()
	w.state = st
	if lastExit != "" {
		w.lastExit = lastExit
	}
	w.mu.Unlock()
	if st == StateUp {
		w.gauge.Set(1)
	} else {
		w.gauge.Set(0)
	}
	up := int64(0)
	for _, o := range s.workers {
		o.mu.Lock()
		if o.state == StateUp {
			up++
		}
		o.mu.Unlock()
	}
	gWorkersUp.Set(up)
}

// sleep waits d or until shutdown; false means shutdown won.
func (s *Supervisor) sleep(d time.Duration) bool {
	select {
	case <-time.After(d):
		return true
	case <-s.ctx.Done():
		return false
	}
}

func (s *Supervisor) nextBackoff(d time.Duration) time.Duration {
	d *= 2
	if d > s.opts.BackoffCap {
		d = s.opts.BackoffCap
	}
	return d
}

func exitString(err error) string {
	if err == nil {
		return "exit 0"
	}
	return err.Error()
}

// Snapshot reports every worker slot.
func (s *Supervisor) Snapshot() []WorkerInfo {
	out := make([]WorkerInfo, len(s.workers))
	for i, w := range s.workers {
		w.mu.Lock()
		info := WorkerInfo{
			Index:    w.index,
			State:    w.state,
			Restarts: w.restarts.Load(),
			LastExit: w.lastExit,
		}
		if w.proc != nil {
			info.Addr = w.proc.Addr()
			info.Pid = w.proc.Pid()
		}
		w.mu.Unlock()
		out[i] = info
	}
	return out
}

// Endpoints returns the addresses of workers currently serving (state
// up) — the Router's backend set. Order is stable by worker index.
func (s *Supervisor) Endpoints() []string {
	var out []string
	for _, w := range s.workers {
		w.mu.Lock()
		if w.state == StateUp && w.proc != nil {
			out = append(out, w.proc.Addr())
		}
		w.mu.Unlock()
	}
	return out
}

// Replace drains worker index and lets its manager relaunch it without
// backoff: the drain-and-replace path for rolling restarts. It returns
// once the signal is delivered; the replacement comes up asynchronously.
func (s *Supervisor) Replace(index int) error {
	if index < 0 || index >= len(s.workers) {
		return fmt.Errorf("fleet: no worker %d", index)
	}
	w := s.workers[index]
	w.mu.Lock()
	proc := w.proc
	st := w.state
	w.mu.Unlock()
	if proc == nil || st == StateDown || st == StateStopped {
		return fmt.Errorf("fleet: worker %d is not running", index)
	}
	w.replacing.Store(true)
	return proc.Signal(syscall.SIGTERM)
}

// Drain shuts the fleet down: every worker gets SIGTERM and its
// manager waits for a clean exit, bounded by ctx. After Drain returns
// the supervisor is finished.
func (s *Supervisor) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.cancel()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		for _, w := range s.workers {
			w.mu.Lock()
			if w.proc != nil {
				w.proc.Kill()
			}
			w.mu.Unlock()
		}
		<-done
		return fmt.Errorf("fleet: drain timed out; workers killed")
	}
}

// --- real process launcher ---

// readyLine matches haspmv-serve's startup line on stderr.
var readyLine = regexp.MustCompile(`serving on http://(\S+)`)

// ExecLauncher spawns haspmv-serve worker processes on loopback
// ephemeral ports, parsing the ready line from each worker's stderr and
// forwarding the rest of its output line-by-line with a worker prefix.
type ExecLauncher struct {
	// Bin is the haspmv-serve binary path. Required.
	Bin string
	// Args are appended to "-addr 127.0.0.1:0" (e.g. -machine, -preload).
	Args []string
	// Stderr receives the workers' forwarded output (default os.Stderr).
	Stderr io.Writer
	// ReadyTimeout bounds the wait for the ready line (default 30s —
	// preloading large matrices happens before the listener opens).
	ReadyTimeout time.Duration
}

type execProc struct {
	cmd  *exec.Cmd
	addr string
}

func (p *execProc) Addr() string { return p.addr }
func (p *execProc) Pid() int     { return p.cmd.Process.Pid }
func (p *execProc) Signal(sig os.Signal) error {
	return p.cmd.Process.Signal(sig)
}
func (p *execProc) Kill() error { return p.cmd.Process.Kill() }
func (p *execProc) Wait() error { return p.cmd.Wait() }

// Launch starts one worker and blocks until it prints its ready line.
func (l *ExecLauncher) Launch(ctx context.Context, index int) (Proc, error) {
	out := l.Stderr
	if out == nil {
		out = os.Stderr
	}
	timeout := l.ReadyTimeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	args := append([]string{"-addr", "127.0.0.1:0"}, l.Args...)
	cmd := exec.Command(l.Bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return nil, err
	}
	cmd.Stdout = out
	if err := cmd.Start(); err != nil {
		return nil, err
	}

	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		sc.Buffer(make([]byte, 64<<10), 1<<20)
		for sc.Scan() {
			line := sc.Text()
			if m := readyLine.FindStringSubmatch(line); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
			fmt.Fprintf(out, "[worker%d] %s\n", index, line)
		}
	}()

	select {
	case addr := <-addrCh:
		return &execProc{cmd: cmd, addr: addr}, nil
	case <-time.After(timeout):
		cmd.Process.Kill()
		go cmd.Wait()
		return nil, fmt.Errorf("fleet: worker %d produced no ready line within %s", index, timeout)
	case <-ctx.Done():
		cmd.Process.Kill()
		go cmd.Wait()
		return nil, ctx.Err()
	}
}
