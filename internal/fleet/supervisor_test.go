package fleet

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"syscall"
	"testing"
	"time"
)

// fakeProc is an in-process stand-in for a haspmv-serve worker: a real
// HTTP server (so the health pinger exercises the same code paths) with
// a controllable exit.
type fakeProc struct {
	pid  int
	srv  *httptest.Server
	exit chan error
	once sync.Once

	mu       sync.Mutex
	draining bool
	sigterms int
}

func newFakeProc(pid int) *fakeProc {
	p := &fakeProc{pid: pid, exit: make(chan error, 1)}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		p.mu.Lock()
		d := p.draining
		p.mu.Unlock()
		if d {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	p.srv = httptest.NewServer(mux)
	return p
}

func (p *fakeProc) Addr() string { return p.srv.Listener.Addr().String() }
func (p *fakeProc) Pid() int     { return p.pid }

func (p *fakeProc) Signal(sig os.Signal) error {
	if sig == syscall.SIGTERM {
		p.mu.Lock()
		p.sigterms++
		p.mu.Unlock()
		p.terminate(nil) // a fake worker drains instantly
	}
	return nil
}

func (p *fakeProc) Kill() error {
	p.terminate(errors.New("killed"))
	return nil
}

func (p *fakeProc) Wait() error { return <-p.exit }

// crash simulates the worker dying on its own (the kill -9 case).
func (p *fakeProc) crash() { p.terminate(errors.New("signal: killed")) }

func (p *fakeProc) terminate(err error) {
	p.once.Do(func() {
		p.srv.Close()
		p.exit <- err
	})
}

// fakeLauncher hands out fakeProcs and records every launch time.
type fakeLauncher struct {
	mu       sync.Mutex
	launches []time.Time
	procs    []*fakeProc
}

func (l *fakeLauncher) Launch(ctx context.Context, index int) (Proc, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	p := newFakeProc(1000 + len(l.procs))
	l.launches = append(l.launches, time.Now())
	l.procs = append(l.procs, p)
	return p, nil
}

func (l *fakeLauncher) latest() *fakeProc {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.procs[len(l.procs)-1]
}

func (l *fakeLauncher) count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.procs)
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func testSupervisor(t *testing.T, workers int) (*Supervisor, *fakeLauncher) {
	t.Helper()
	l := &fakeLauncher{}
	s, err := NewSupervisor(SupervisorOptions{
		Workers:     workers,
		Launcher:    l,
		BackoffBase: 10 * time.Millisecond,
		BackoffCap:  80 * time.Millisecond,
		ResetAfter:  time.Hour, // never reset inside a test
		HealthEvery: 10 * time.Millisecond,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Drain(ctx)
	})
	return s, l
}

func allUp(s *Supervisor, n int) func() bool {
	return func() bool { return len(s.Endpoints()) == n }
}

func TestSupervisorBringsFleetUp(t *testing.T) {
	s, l := testSupervisor(t, 3)
	s.Start()
	waitFor(t, "3 workers up", allUp(s, 3))
	if got := l.count(); got != 3 {
		t.Fatalf("%d launches for 3 workers", got)
	}
	for _, info := range s.Snapshot() {
		if info.State != StateUp || info.Addr == "" || info.Pid == 0 {
			t.Fatalf("worker %d not healthy in snapshot: %+v", info.Index, info)
		}
	}
}

func TestSupervisorRestartsCrashWithBackoff(t *testing.T) {
	s, l := testSupervisor(t, 1)
	s.Start()
	waitFor(t, "worker up", allUp(s, 1))

	// Crash it three times; each restart must come after a growing delay.
	for i := 0; i < 3; i++ {
		l.latest().crash()
		want := i + 2 // initial launch + i+1 restarts
		waitFor(t, fmt.Sprintf("relaunch %d", want), func() bool { return l.count() >= want })
		waitFor(t, "worker back up", allUp(s, 1))
	}
	info := s.Snapshot()[0]
	if info.Restarts != 3 {
		t.Fatalf("restarts = %d, want 3", info.Restarts)
	}
	if info.LastExit == "" {
		t.Fatal("crash left no LastExit")
	}

	// Backoff must grow: the gap before restart 3 strictly exceeds the
	// gap before restart 1 (10ms vs 40ms base progression leaves slack
	// even with scheduling noise).
	l.mu.Lock()
	gap1 := l.launches[1].Sub(l.launches[0])
	gap3 := l.launches[3].Sub(l.launches[2])
	l.mu.Unlock()
	if gap3 <= gap1 {
		t.Fatalf("backoff did not grow: first gap %s, third gap %s", gap1, gap3)
	}
}

func TestSupervisorReplace(t *testing.T) {
	s, l := testSupervisor(t, 2)
	s.Start()
	waitFor(t, "2 workers up", allUp(s, 2))

	old := s.Snapshot()[0].Pid
	if err := s.Replace(0); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "replacement up", func() bool {
		infos := s.Snapshot()
		return infos[0].State == StateUp && infos[0].Pid != old
	})
	// The old proc must have been asked to drain, not killed.
	l.mu.Lock()
	var first *fakeProc
	for _, p := range l.procs {
		if p.pid == old {
			first = p
		}
	}
	l.mu.Unlock()
	first.mu.Lock()
	sigterms := first.sigterms
	first.mu.Unlock()
	if sigterms == 0 {
		t.Fatal("replace did not SIGTERM the old worker")
	}
	if err := s.Replace(99); err == nil {
		t.Fatal("replacing unknown worker accepted")
	}
}

func TestSupervisorDetectsDraining(t *testing.T) {
	s, l := testSupervisor(t, 1)
	s.Start()
	waitFor(t, "worker up", allUp(s, 1))

	p := l.latest()
	p.mu.Lock()
	p.draining = true
	p.mu.Unlock()
	waitFor(t, "draining state", func() bool { return s.Snapshot()[0].State == StateDraining })
	// A draining worker must leave the router's backend set.
	if eps := s.Endpoints(); len(eps) != 0 {
		t.Fatalf("draining worker still in endpoints: %v", eps)
	}
}

func TestSupervisorDrain(t *testing.T) {
	l := &fakeLauncher{}
	s, err := NewSupervisor(SupervisorOptions{
		Workers:     2,
		Launcher:    l,
		HealthEvery: 10 * time.Millisecond,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	waitFor(t, "2 workers up", allUp(s, 2))

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for _, info := range s.Snapshot() {
		if info.State != StateStopped {
			t.Fatalf("worker %d state %s after drain, want stopped", info.Index, info.State)
		}
	}
	for _, p := range l.procs {
		p.mu.Lock()
		n := p.sigterms
		p.mu.Unlock()
		if n == 0 {
			t.Fatalf("worker pid %d never received SIGTERM", p.pid)
		}
	}
}

func TestSupervisorOptionErrors(t *testing.T) {
	if _, err := NewSupervisor(SupervisorOptions{Workers: 0, Launcher: &fakeLauncher{}}); err == nil {
		t.Fatal("0 workers accepted")
	}
	if _, err := NewSupervisor(SupervisorOptions{Workers: 1}); err == nil {
		t.Fatal("nil launcher accepted")
	}
}
