package shard

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"haspmv/internal/gen"
	"haspmv/internal/sparse"
)

// serialMultiply is the bit-precise reference: each row summed left to
// right in CSR order, the association every kernel in the repository
// reproduces.
func serialMultiply(a *sparse.CSR, x []float64) []float64 {
	y := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		s := 0.0
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			s += a.Val[k] * x[a.ColIdx[k]]
		}
		y[i] = s
	}
	return y
}

// shardMultiply computes each shard's fragment with the same serial
// walk over the sliced submatrix and gathers.
func shardMultiply(t *testing.T, a *sparse.CSR, plan []Desc, x []float64) []float64 {
	t.Helper()
	frags := make([][]float64, len(plan))
	for k, d := range plan {
		sub := Slice(a, d)
		if err := sub.Validate(); err != nil {
			t.Fatalf("shard %d slice invalid: %v", k, err)
		}
		frags[k] = serialMultiply(sub, x[d.ColLo:d.ColHi])
	}
	y := make([]float64, a.Rows)
	if err := Gather(y, plan, frags); err != nil {
		t.Fatalf("gather: %v", err)
	}
	return y
}

func randomCSR(rng *rand.Rand, rows, cols, nnzPerRow int) *sparse.CSR {
	a := &sparse.CSR{Rows: rows, Cols: cols, RowPtr: make([]int, rows+1)}
	for i := 0; i < rows; i++ {
		n := rng.Intn(nnzPerRow + 1)
		if rng.Intn(7) == 0 {
			n = 0 // empty rows exercise the ownership chain
		}
		seen := map[int]bool{}
		for j := 0; j < n; j++ {
			c := rng.Intn(cols)
			if seen[c] {
				continue
			}
			seen[c] = true
			a.ColIdx = append(a.ColIdx, c)
			a.Val = append(a.Val, 1+rng.Float64())
		}
		a.RowPtr[i+1] = len(a.ColIdx)
	}
	return a
}

func TestPlanCoversAndGathers(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		a := randomCSR(rng, 1+rng.Intn(60), 1+rng.Intn(40), 5)
		count := 1 + rng.Intn(6)
		plan, err := Plan(a, count, nil)
		if err != nil {
			t.Fatalf("plan: %v", err)
		}
		if err := Check(a, plan); err != nil {
			t.Fatalf("trial %d (rows=%d nnz=%d count=%d): %v", trial, a.Rows, a.NNZ(), count, err)
		}
		x := make([]float64, a.Cols)
		for i := range x {
			x[i] = 1 + rng.Float64()
		}
		got := shardMultiply(t, a, plan, x)
		want := serialMultiply(a, x)
		split := make([]bool, a.Rows)
		for _, d := range plan {
			if d.Rows() <= 0 {
				continue
			}
			if d.SplitFirst {
				split[d.Row0] = true
			}
			if d.SplitLast {
				split[d.Row1] = true
			}
		}
		for i := range want {
			if split[i] {
				// A cut row's fragments re-associate the sum; only a small
				// rounding difference is allowed.
				if diff := math.Abs(got[i] - want[i]); diff > 1e-9*(1+math.Abs(want[i])) {
					t.Fatalf("trial %d split row %d: got %v want %v", trial, i, got[i], want[i])
				}
			} else if got[i] != want[i] {
				// Uncut rows see the identical left-to-right chain over the
				// identical values: bit equality is required.
				t.Fatalf("trial %d row %d: got %x want %x (not bit-identical)", trial, i, got[i], want[i])
			}
		}
	}
}

func TestPlanDeterministic(t *testing.T) {
	a := gen.Representative("dawson5", 64)
	p1, err := Plan(a, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Plan(a.Clone(), 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p1, p2) {
		t.Fatalf("plans differ across identical inputs:\n%v\n%v", p1, p2)
	}
}

func TestPlanWeights(t *testing.T) {
	a := gen.Representative("dawson5", 64)
	plan, err := Plan(a, 2, []float64{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(a, plan); err != nil {
		t.Fatal(err)
	}
	n0, n1 := plan[0].NNZ(), plan[1].NNZ()
	if n0 <= n1 {
		t.Fatalf("weight 3 shard has %d nnz, weight 1 shard %d — want the heavier worker to carry more", n0, n1)
	}
	ratio := float64(n0) / float64(n0+n1)
	if ratio < 0.70 || ratio > 0.80 {
		t.Fatalf("3:1 weights gave nnz share %.3f, want ~0.75", ratio)
	}
}

func TestPlanErrors(t *testing.T) {
	a := randomCSR(rand.New(rand.NewSource(1)), 10, 10, 3)
	if _, err := Plan(a, 0, nil); err == nil {
		t.Fatal("count 0 accepted")
	}
	if _, err := Plan(a, 2, []float64{1}); err == nil {
		t.Fatal("weight/count mismatch accepted")
	}
	if _, err := Plan(a, 2, []float64{0, 0}); err == nil {
		t.Fatal("zero weights accepted")
	}
	if _, err := Plan(a, 2, []float64{1, -1}); err == nil {
		t.Fatal("negative weight accepted")
	}
}

func TestPlanMoreShardsThanRows(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomCSR(rng, 3, 8, 4)
	plan, err := Plan(a, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(a, plan); err != nil {
		t.Fatal(err)
	}
	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = float64(i + 1)
	}
	got := shardMultiply(t, a, plan, x)
	want := serialMultiply(a, x)
	for i := range want {
		if diff := math.Abs(got[i] - want[i]); diff > 1e-9*(1+math.Abs(want[i])) {
			t.Fatalf("row %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func TestSliceColumnWindow(t *testing.T) {
	a := gen.Representative("dawson5", 64)
	plan, err := Plan(a, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range plan {
		sub := Slice(a, d)
		if sub.Cols != d.Cols() {
			t.Fatalf("shard %d: sliced Cols %d, window %d", d.Index, sub.Cols, d.Cols())
		}
		if err := sub.Validate(); err != nil {
			t.Fatalf("shard %d: %v", d.Index, err)
		}
		if sub.NNZ() != d.NNZ() {
			t.Fatalf("shard %d: sliced nnz %d, desc %d", d.Index, sub.NNZ(), d.NNZ())
		}
	}
}

func TestGatherErrors(t *testing.T) {
	a := randomCSR(rand.New(rand.NewSource(5)), 10, 10, 3)
	plan, err := Plan(a, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	y := make([]float64, a.Rows)
	if err := Gather(y, plan, make([][]float64, 1)); err == nil {
		t.Fatal("fragment count mismatch accepted")
	}
	frags := [][]float64{make([]float64, plan[0].Rows()+1), make([]float64, plan[1].Rows())}
	if err := Gather(y, plan, frags); err == nil {
		t.Fatal("fragment length mismatch accepted")
	}
}
