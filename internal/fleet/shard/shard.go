// Package shard plans and executes row-sharding of a CSR matrix across
// fleet workers: matrices too large (or too hot) for one haspmv-serve
// process are cut into contiguous nnz ranges, one per worker, exactly
// like HASpMV cuts nnz across asymmetric cores — boundaries may fall in
// the middle of a row, in which case both neighbouring shards produce a
// partial sum for that row and the router's gather epilogue adds the
// fragments in ascending shard order, the same left-associated chain as
// internal/core's extraY merge.
//
// A Plan is a pure function of (RowPtr, weights, count): the router and
// every worker derive bit-identical plans independently, so no plan
// distribution protocol is needed — a worker handed (matrix, scale,
// index, count) regenerates the matrix, re-plans, and slices its own
// shard.
package shard

import (
	"fmt"
	"sort"

	"haspmv/internal/sparse"
)

// Desc describes one shard of a plan: a half-open nnz range [Lo, Hi) of
// the original matrix, the inclusive row range [Row0, Row1] the shard
// produces output for, and the half-open column window [ColLo, ColHi)
// its nonzeros touch (the x slice the shard needs).
type Desc struct {
	Index int `json:"index"`
	Count int `json:"count"`
	// Lo/Hi bound the shard's nonzeros in the original CSR order.
	Lo int `json:"lo"`
	Hi int `json:"hi"`
	// Row0/Row1 are the inclusive row range the shard owns. A row cut by
	// a shard boundary is owned by every shard holding a piece of it;
	// empty rows between boundaries belong to exactly one shard. An empty
	// shard has Row1 = Row0-1.
	Row0 int `json:"row0"`
	Row1 int `json:"row1"`
	// SplitFirst/SplitLast mark whether the first/last owned row is cut
	// so that another shard holds part of it (the fragments the gather
	// epilogue must add rather than copy).
	SplitFirst bool `json:"split_first,omitempty"`
	SplitLast  bool `json:"split_last,omitempty"`
	// ColLo/ColHi is the half-open column window of the shard's nonzeros:
	// the shard multiplies against x[ColLo:ColHi] only. Always a valid
	// non-empty window (even for an empty shard) so sliced matrices keep
	// at least one column.
	ColLo int `json:"col_lo"`
	ColHi int `json:"col_hi"`
}

// Rows returns the number of output rows the shard produces.
func (d Desc) Rows() int { return d.Row1 - d.Row0 + 1 }

// NNZ returns the number of nonzeros the shard owns.
func (d Desc) NNZ() int { return d.Hi - d.Lo }

// Cols returns the width of the shard's column window (the x slice
// length the shard consumes).
func (d Desc) Cols() int { return d.ColHi - d.ColLo }

// Plan cuts the matrix into count contiguous nnz ranges sized by
// weights (nil means uniform). Weights are the fleet-level analogue of
// the paper's P_proportion: a worker backed by a stronger core group
// gets a proportionally larger nnz share. The plan depends only on
// RowPtr, ColIdx extents and the arguments, so independent callers
// agree bit-for-bit.
func Plan(a *sparse.CSR, count int, weights []float64) ([]Desc, error) {
	if count < 1 {
		return nil, fmt.Errorf("shard: count %d, want >= 1", count)
	}
	if weights != nil && len(weights) != count {
		return nil, fmt.Errorf("shard: %d weights for %d shards", len(weights), count)
	}
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("shard: negative weight %v", w)
		}
		total += w
	}
	if weights != nil && total <= 0 {
		return nil, fmt.Errorf("shard: weights sum to %v, want > 0", total)
	}
	nnz := a.NNZ()

	// Cut positions in nnz space: cuts[k] is where shard k starts.
	cuts := make([]int, count+1)
	cuts[count] = nnz
	acc := 0.0
	for k := 1; k < count; k++ {
		if weights == nil {
			cuts[k] = k * nnz / count
		} else {
			acc += weights[k-1]
			cuts[k] = int(acc / total * float64(nnz))
		}
		if cuts[k] < cuts[k-1] {
			cuts[k] = cuts[k-1]
		}
	}

	// rowOf(pos) is the row whose entries contain nnz position pos:
	// the last r with RowPtr[r] <= pos < RowPtr[r+1]. Runs of empty rows
	// share a RowPtr value; SearchInts lands past all of them, which is
	// what ownership wants (empty rows in a gap belong to the shard
	// starting at the gap, assigned below by the chain rule).
	rowOf := func(pos int) int {
		// First r with RowPtr[r+1] > pos.
		return sort.SearchInts(a.RowPtr[1:], pos+1)
	}

	plan := make([]Desc, count)
	prevRow1 := -1
	for k := 0; k < count; k++ {
		d := Desc{Index: k, Count: count, Lo: cuts[k], Hi: cuts[k+1]}
		if d.Lo < d.Hi {
			first := rowOf(d.Lo)
			if a.RowPtr[first] < d.Lo {
				// The cut split row `first`: the previous shard holds its
				// head, this shard continues it.
				d.Row0 = first
				d.SplitFirst = true
			} else if prevRow1 >= first {
				// Boundary fell exactly between two pieces of... impossible
				// when RowPtr[first] == Lo; keep the chain consistent anyway.
				d.Row0 = prevRow1 + 1
			} else {
				// Clean cut: also claim any empty rows between the previous
				// shard's last row and this shard's first nonzero row.
				d.Row0 = prevRow1 + 1
			}
			d.Row1 = rowOf(d.Hi - 1)
			d.SplitLast = d.Hi < a.RowPtr[d.Row1+1]
		} else {
			// Empty shard: owns no rows; the chain passes its position on.
			d.Row0 = prevRow1 + 1
			d.Row1 = d.Row0 - 1
		}
		if k == count-1 && d.Row1 < a.Rows-1 {
			// The last shard sweeps up trailing empty rows (they have no
			// nonzeros, so its kernel just writes zeros for them).
			if d.Lo == d.Hi {
				d.Row0 = prevRow1 + 1
			}
			d.Row1 = a.Rows - 1
		}
		d.ColLo, d.ColHi = colWindow(a, d.Lo, d.Hi)
		plan[k] = d
		if d.Row1 > prevRow1 {
			prevRow1 = d.Row1
		}
	}
	return plan, nil
}

// colWindow returns the half-open column window touched by nnz range
// [lo, hi), or a minimal valid window when the range is empty so sliced
// matrices always keep at least one column.
func colWindow(a *sparse.CSR, lo, hi int) (int, int) {
	if lo >= hi {
		return 0, min(1, max(a.Cols, 1))
	}
	cLo, cHi := a.ColIdx[lo], a.ColIdx[lo]
	for _, c := range a.ColIdx[lo:hi] {
		if c < cLo {
			cLo = c
		}
		if c > cHi {
			cHi = c
		}
	}
	return cLo, cHi + 1
}

// Slice materializes shard d of matrix a as a standalone CSR: rows
// Row0..Row1 with nonzeros clipped to [Lo, Hi) and columns rebased into
// the shard's window (so the shard multiplies against the x[ColLo:ColHi]
// slice the router sends it). The result shares no storage with a.
func Slice(a *sparse.CSR, d Desc) *sparse.CSR {
	rows := d.Rows()
	if rows < 0 {
		rows = 0
	}
	sub := &sparse.CSR{
		Rows:   rows,
		Cols:   d.Cols(),
		RowPtr: make([]int, rows+1),
		ColIdx: make([]int, d.NNZ()),
		Val:    make([]float64, d.NNZ()),
	}
	pos := 0
	for r := 0; r < rows; r++ {
		lo, hi := a.RowPtr[d.Row0+r], a.RowPtr[d.Row0+r+1]
		if lo < d.Lo {
			lo = d.Lo
		}
		if hi > d.Hi {
			hi = d.Hi
		}
		for k := lo; k < hi; k++ {
			sub.ColIdx[pos] = a.ColIdx[k] - d.ColLo
			sub.Val[pos] = a.Val[k]
			pos++
		}
		sub.RowPtr[r+1] = pos
	}
	return sub
}

// Gather assembles the full result vector from per-shard fragments,
// reusing the extraY merge discipline: a row owned by several shards
// gets its fragments added in ascending shard order (the same
// left-associated chain core's serial epilogue uses for cut rows), and
// a row owned by one shard is copied. frags[k] must have plan[k].Rows()
// elements; y must have the original matrix's row count.
func Gather(y []float64, plan []Desc, frags [][]float64) error {
	if len(frags) != len(plan) {
		return fmt.Errorf("shard: %d fragments for %d shards", len(frags), len(plan))
	}
	for k, d := range plan {
		if len(frags[k]) != d.Rows() {
			return fmt.Errorf("shard: fragment %d has %d rows, want %d", k, len(frags[k]), d.Rows())
		}
	}
	written := -1 // highest row already holding a value
	for k, d := range plan {
		for r := d.Row0; r <= d.Row1; r++ {
			v := frags[k][r-d.Row0]
			if r <= written {
				y[r] += v
			} else {
				y[r] = v
			}
		}
		if d.Row1 > written {
			written = d.Row1
		}
	}
	for r := written + 1; r < len(y); r++ {
		y[r] = 0
	}
	return nil
}

// Check validates a plan against its matrix: every nonzero in exactly
// one shard, every row owned by at least one shard, windows containing
// the shard's columns. Used by tests and the router's self-check mode.
func Check(a *sparse.CSR, plan []Desc) error {
	if len(plan) == 0 {
		return fmt.Errorf("shard: empty plan")
	}
	pos, row := 0, 0
	for k, d := range plan {
		if d.Lo != pos {
			return fmt.Errorf("shard: shard %d starts at nnz %d, want %d", k, d.Lo, pos)
		}
		if d.Hi < d.Lo {
			return fmt.Errorf("shard: shard %d has negative nnz range [%d,%d)", k, d.Lo, d.Hi)
		}
		pos = d.Hi
		if d.Rows() > 0 {
			if d.Row0 > row {
				return fmt.Errorf("shard: rows %d..%d unowned before shard %d", row, d.Row0-1, k)
			}
			if d.Row1+1 > row {
				row = d.Row1 + 1
			}
		}
		for _, c := range a.ColIdx[d.Lo:d.Hi] {
			if c < d.ColLo || c >= d.ColHi {
				return fmt.Errorf("shard: shard %d column %d outside window [%d,%d)", k, c, d.ColLo, d.ColHi)
			}
		}
	}
	if pos != a.NNZ() {
		return fmt.Errorf("shard: plan covers %d nonzeros, matrix has %d", pos, a.NNZ())
	}
	if row != a.Rows {
		return fmt.Errorf("shard: plan owns rows up to %d, matrix has %d", row, a.Rows)
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
