package fleet

import (
	"context"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"haspmv/internal/amp"
	"haspmv/internal/gen"
	"haspmv/internal/server"
	"haspmv/internal/sparse"
)

func serialMultiply(a *sparse.CSR, x []float64) []float64 {
	y := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		s := 0.0
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			s += a.Val[k] * x[a.ColIdx[k]]
		}
		y[i] = s
	}
	return y
}

func testVector(n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = 1 + float64(i%13)*0.25
	}
	return x
}

func TestGroupMatchesSerial(t *testing.T) {
	m := amp.IntelI912900KF()
	for _, shards := range []int{1, 2, 4} {
		for _, name := range []string{"dawson5", "webbase-1M"} {
			a := gen.Representative(name, 48)
			g, err := NewGroup(m, a, shards, GroupOptions{})
			if err != nil {
				t.Fatalf("%s x%d: %v", name, shards, err)
			}
			x := testVector(a.Cols)
			y := make([]float64, a.Rows)
			if err := g.Multiply(context.Background(), y, x); err != nil {
				g.Close()
				t.Fatalf("%s x%d multiply: %v", name, shards, err)
			}
			g.Close()
			want := serialMultiply(a, x)
			for i := range want {
				if diff := math.Abs(y[i] - want[i]); diff > 1e-9*(1+math.Abs(want[i])) {
					t.Fatalf("%s x%d row %d: got %v want %v", name, shards, i, y[i], want[i])
				}
			}
		}
	}
}

// TestGroupDeterministicUnderLoad drives many concurrent clients with
// distinct vectors through a 3-shard group (so requests coalesce inside
// each shard's batcher) and asserts every response is bit-identical to
// the same group's unloaded answer — the fleet-level extension of the
// batcher's bit-stability guarantee.
func TestGroupDeterministicUnderLoad(t *testing.T) {
	m := amp.IntelI912900KF()
	a := gen.Representative("dawson5", 64)
	g, err := NewGroup(m, a, 3, GroupOptions{
		Batcher: server.BatcherOptions{Linger: 200 * time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	const clients = 8
	xs := make([][]float64, clients)
	refs := make([][]float64, clients)
	for c := range xs {
		xs[c] = make([]float64, a.Cols)
		for i := range xs[c] {
			xs[c][i] = 1 + float64((i*7+c*3)%17)*0.125
		}
		// Solo reference through the same group: no concurrency, so each
		// shard serves it as a width-1 batch.
		refs[c] = make([]float64, a.Rows)
		if err := g.Multiply(context.Background(), refs[c], xs[c]); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for iter := 0; iter < 20; iter++ {
				y := make([]float64, a.Rows)
				if err := g.Multiply(context.Background(), y, xs[c]); err != nil {
					errCh <- err
					return
				}
				for i := range y {
					if y[i] != refs[c][i] {
						errCh <- fmt.Errorf("client %d iter %d row %d: %x != %x (coalesced answer differs from solo)", c, iter, i, y[i], refs[c][i])
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}

	coalesced := int64(0)
	for _, s := range g.Stats() {
		coalesced += s.Stats.Coalesced
	}
	if coalesced == 0 {
		t.Log("warning: no coalescing observed (timing-dependent); determinism still verified")
	}
}

func TestGroupArgErrors(t *testing.T) {
	m := amp.IntelI912900KF()
	a := gen.Representative("dawson5", 32)
	if _, err := NewGroup(m, a, 0, GroupOptions{}); err == nil {
		t.Fatal("shard count 0 accepted")
	}
	g, err := NewGroup(m, a, 2, GroupOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if err := g.Multiply(context.Background(), make([]float64, a.Rows-1), make([]float64, a.Cols)); err == nil {
		t.Fatal("short y accepted")
	}
	if err := g.Multiply(context.Background(), make([]float64, a.Rows), make([]float64, a.Cols+1)); err == nil {
		t.Fatal("long x accepted")
	}
}

func TestGroupShardMachinesSplit(t *testing.T) {
	m := amp.IntelI912900KF() // 8P + 8E
	a := gen.Representative("dawson5", 48)
	g, err := NewGroup(m, a, 4, GroupOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	stats := g.Stats()
	if len(stats) != 4 {
		t.Fatalf("got %d shards, want 4", len(stats))
	}
	for _, s := range stats {
		if s.Machine == m.Name {
			t.Fatalf("shard %d runs on the whole machine; want a split slice", s.Desc.Index)
		}
	}
	// The split must not mutate the caller's machine.
	if m.Groups[0].Cores != 8 || m.Groups[1].Cores != 8 {
		t.Fatalf("NewGroup mutated the machine model: %+v", m.Groups)
	}

	gw, err := NewGroup(m, a, 4, GroupOptions{WholeMachine: true})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	for _, s := range gw.Stats() {
		if s.Machine != m.Name {
			t.Fatalf("WholeMachine shard %d runs on %q", s.Desc.Index, s.Machine)
		}
	}
}

func TestGroupRebalance(t *testing.T) {
	m := amp.IntelI912900KF()
	a := gen.Representative("webbase-1M", 64)
	g, err := NewGroup(m, a, 2, GroupOptions{RebalanceMin: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	// Not enough traffic: both imbalance and rebalance must decline.
	if imb := g.Imbalance(); imb != 0 {
		t.Fatalf("imbalance %v before any traffic, want 0", imb)
	}
	if moved, err := g.Rebalance(); err != nil || moved {
		t.Fatalf("rebalance before traffic: moved=%v err=%v", moved, err)
	}

	x := testVector(a.Cols)
	want := serialMultiply(a, x)
	y := make([]float64, a.Rows)
	for i := 0; i < 10; i++ {
		if err := g.Multiply(context.Background(), y, x); err != nil {
			t.Fatal(err)
		}
	}
	if imb := g.Imbalance(); imb < 1 {
		t.Fatalf("imbalance %v after traffic, want >= 1", imb)
	}
	// Whether or not the measured plan differs enough to move, the group
	// must keep answering correctly afterwards.
	if _, err := g.Rebalance(); err != nil {
		t.Fatal(err)
	}
	if err := g.Multiply(context.Background(), y, x); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if diff := math.Abs(y[i] - want[i]); diff > 1e-9*(1+math.Abs(want[i])) {
			t.Fatalf("row %d after rebalance: got %v want %v", i, y[i], want[i])
		}
	}
}
